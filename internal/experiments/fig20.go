package experiments

import (
	"fmt"

	"github.com/gfcsim/gfc/internal/dcqcn"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/scenario"
	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// Fig20Result holds the §7 interaction study traces: the switch ingress
// queue, H1's DCQCN rate and H1's GFC port rate over time. The paper's
// narrative: GFC caps the port at 1.25 Gb/s within one hop-RTT of the incast
// onset; DCQCN then converges below that, at which point GFC is inactive.
type Fig20Result struct {
	Queue     *stats.Series // ingress queue at S1 from H1
	DCQCNRate *stats.Series // H1 flow rate under DCQCN
	GFCRate   *stats.Series // H1 port rate under GFC
	// MaxQueue is the worst ingress occupancy across S1's ports.
	MaxQueue units.Size
	// FinalDCQCN is DCQCN's rate at the end (≈ fair share 1.25 Gb/s).
	FinalDCQCN units.Rate
	Drops      int64
}

// RunFig20 executes the dumbbell incast (8 senders → 1 receiver, ECN
// threshold 40 KB) with buffer-based GFC and DCQCN together.
func RunFig20(duration units.Time) (*Fig20Result, error) {
	if duration == 0 {
		duration = 20 * units.Millisecond
	}
	// "All settings of buffer-based GFC are consistent with
	// aforementioned simulations" (§7): 300 KB buffers, so the incast
	// onset crosses B1 before DCQCN's end-to-end loop reacts. Only the
	// buffer size and GFC params come from the sim preset — the rest of
	// the config keeps the netsim defaults, so the spec spells the two
	// fields out rather than naming the preset.
	simCfg, fp := SimParams()
	spec := scenario.Spec{
		Name:     "fig20-incast",
		Topology: scenario.TopologySpec{Builder: "dumbbell", N: 8},
		Routing:  scenario.RoutingSpec{Policy: "spf"},
		Workload: scenario.WorkloadSpec{Flows: []scenario.FlowSpec{
			{ID: 1, Src: "H1", Dst: "H9"}, {ID: 2, Src: "H2", Dst: "H9"},
			{ID: 3, Src: "H3", Dst: "H9"}, {ID: 4, Src: "H4", Dst: "H9"},
			{ID: 5, Src: "H5", Dst: "H9"}, {ID: 6, Src: "H6", Dst: "H9"},
			{ID: 7, Src: "H7", Dst: "H9"}, {ID: 8, Src: "H8", Dst: "H9"},
		}},
		Scheme: scenario.SchemeSpec{FC: GFCBuf, Params: fp},
		Sim: scenario.SimSpec{
			BufferBytes: simCfg.BufferSize,
			ECNBytes:    40 * units.KB,
		},
		Run: scenario.RunSpec{DurationNs: duration, Analytic: true},
	}
	res := &Fig20Result{
		Queue:     &stats.Series{},
		DCQCNRate: &stats.Series{},
		GFCRate:   &stats.Series{},
	}
	sim, err := scenario.Build(spec, &scenario.Overrides{
		Trace: func(topo *topology.Topology) *netsim.Trace {
			s1 := topo.MustLookup("S1")
			return &netsim.Trace{
				OnQueue: func(t units.Time, node topology.NodeID, port, _ int, q units.Size) {
					if node == s1 && port == 0 {
						res.Queue.Append(t, float64(q))
					}
					if node == s1 && units.Size(q) > res.MaxQueue {
						res.MaxQueue = q
					}
				},
			}
		},
		OnFlow: func(f *netsim.Flow, net *netsim.Network) error {
			rp := dcqcn.Attach(net, f, dcqcn.DefaultConfig(10*units.Gbps))
			if f.ID == 1 {
				rp.RateLog = func(t units.Time, r units.Rate) {
					res.DCQCNRate.Append(t, float64(r))
				}
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	net := sim.Net
	// Sample H1's GFC port rate periodically.
	h1 := sim.Topo.MustLookup("H1")
	var sample func()
	sample = func() {
		res.GFCRate.Append(net.Now(), float64(net.SenderRate(h1, 0, 0)))
		if net.Now() < duration {
			net.Engine().After(50*units.Microsecond, sample)
		}
	}
	net.Engine().After(50*units.Microsecond, sample)
	net.Run(duration)
	res.FinalDCQCN = units.Rate(res.DCQCNRate.MeanAfter(duration * 3 / 4))
	res.Drops = net.Drops()
	if err := sim.CheckAnalytic(); err != nil {
		return res, fmt.Errorf("fig20: %w", err)
	}
	return res, nil
}
