package experiments

import (
	"github.com/gfcsim/gfc/internal/dcqcn"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// Fig20Result holds the §7 interaction study traces: the switch ingress
// queue, H1's DCQCN rate and H1's GFC port rate over time. The paper's
// narrative: GFC caps the port at 1.25 Gb/s within one hop-RTT of the incast
// onset; DCQCN then converges below that, at which point GFC is inactive.
type Fig20Result struct {
	Queue     *stats.Series // ingress queue at S1 from H1
	DCQCNRate *stats.Series // H1 flow rate under DCQCN
	GFCRate   *stats.Series // H1 port rate under GFC
	// MaxQueue is the worst ingress occupancy across S1's ports.
	MaxQueue units.Size
	// FinalDCQCN is DCQCN's rate at the end (≈ fair share 1.25 Gb/s).
	FinalDCQCN units.Rate
	Drops      int64
}

// RunFig20 executes the dumbbell incast (8 senders → 1 receiver, ECN
// threshold 40 KB) with buffer-based GFC and DCQCN together.
func RunFig20(duration units.Time) (*Fig20Result, error) {
	if duration == 0 {
		duration = 20 * units.Millisecond
	}
	// "All settings of buffer-based GFC are consistent with
	// aforementioned simulations" (§7): 300 KB buffers, so the incast
	// onset crosses B1 before DCQCN's end-to-end loop reacts.
	topo := topology.Dumbbell(8, topology.DefaultLinkParams())
	simCfg, fp := SimParams()
	cfg := netsim.Config{
		BufferSize:   simCfg.BufferSize,
		ECNThreshold: 40 * units.KB,
		FlowControl:  fp.Factory(GFCBuf),
	}
	res := &Fig20Result{
		Queue:     &stats.Series{},
		DCQCNRate: &stats.Series{},
		GFCRate:   &stats.Series{},
	}
	s1 := topo.MustLookup("S1")
	cfg.Trace = &netsim.Trace{
		OnQueue: func(t units.Time, node topology.NodeID, port, _ int, q units.Size) {
			if node == s1 && port == 0 {
				res.Queue.Append(t, float64(q))
			}
			if node == s1 && units.Size(q) > res.MaxQueue {
				res.MaxQueue = q
			}
		},
	}
	net, err := netsim.New(topo, cfg)
	if err != nil {
		return nil, err
	}
	tab := routing.NewSPF(topo)
	recv := topo.MustLookup("H9")
	for i := 1; i <= 8; i++ {
		src := topo.MustLookup(hostName(i))
		path, err := tab.Path(src, recv, uint64(i))
		if err != nil {
			return nil, err
		}
		f := &netsim.Flow{ID: i, Src: src, Dst: recv, Path: path}
		rp := dcqcn.Attach(net, f, dcqcn.DefaultConfig(10*units.Gbps))
		if i == 1 {
			rp.RateLog = func(t units.Time, r units.Rate) {
				res.DCQCNRate.Append(t, float64(r))
			}
		}
		if err := net.AddFlow(f, 0); err != nil {
			return nil, err
		}
	}
	// Sample H1's GFC port rate periodically.
	h1 := topo.MustLookup("H1")
	var sample func()
	sample = func() {
		res.GFCRate.Append(net.Now(), float64(net.SenderRate(h1, 0, 0)))
		if net.Now() < duration {
			net.Engine().After(50*units.Microsecond, sample)
		}
	}
	net.Engine().After(50*units.Microsecond, sample)
	net.Run(duration)
	res.FinalDCQCN = units.Rate(res.DCQCNRate.MeanAfter(duration * 3 / 4))
	res.Drops = net.Drops()
	return res, nil
}

func hostName(i int) string {
	return string([]byte{'H', byte('0' + i)})
}
