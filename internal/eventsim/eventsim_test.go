package eventsim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/gfcsim/gfc/internal/units"
)

func TestZeroValueReady(t *testing.T) {
	var e Engine
	ran := false
	e.Schedule(5, func() { ran = true })
	e.RunAll()
	if !ran {
		t.Fatal("event did not run")
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %v, want 5", e.Now())
	}
}

func TestOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(42, func() { order = append(order, i) })
	}
	e.RunAll()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-time events not FIFO: %v", order)
	}
}

func TestAfter(t *testing.T) {
	e := New()
	var at units.Time
	e.Schedule(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.RunAll()
	if at != 150 {
		t.Fatalf("nested After fired at %v, want 150", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(50, func() {})
	})
	e.RunAll()
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil fn did not panic")
		}
	}()
	New().Schedule(1, nil)
}

func TestNegativeAfterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	New().After(-1, func() {})
}

func TestCancel(t *testing.T) {
	e := New()
	ran := false
	ev := e.Schedule(10, func() { ran = true })
	e.Cancel(ev)
	e.RunAll()
	if ran {
		t.Fatal("cancelled event ran")
	}
	// Double-cancel and zero-handle cancel are safe.
	e.Cancel(ev)
	e.Cancel(Event{})
}

func TestCancelOneOfMany(t *testing.T) {
	e := New()
	var got []int
	evs := make([]Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.Schedule(units.Time(i), func() { got = append(got, i) })
	}
	e.Cancel(evs[3])
	e.Cancel(evs[7])
	e.RunAll()
	want := []int{0, 1, 2, 4, 5, 6, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunHorizon(t *testing.T) {
	e := New()
	var fired []units.Time
	for _, at := range []units.Time{10, 20, 30, 40} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.Run(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v within horizon 25", fired)
	}
	// Events at exactly the horizon run.
	e.Run(30)
	if len(fired) != 3 {
		t.Fatalf("fired %v within horizon 30", fired)
	}
	e.RunAll()
	if len(fired) != 4 {
		t.Fatalf("fired %v after RunAll", fired)
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(units.Time(i), func() {
			count++
			if count == 4 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if count != 4 {
		t.Fatalf("count = %d after Stop, want 4", count)
	}
	// Run can resume after Stop.
	e.RunAll()
	if count != 10 {
		t.Fatalf("count = %d after resume, want 10", count)
	}
}

func TestFiredAndPending(t *testing.T) {
	e := New()
	e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Step()
	if e.Fired() != 1 || e.Pending() != 1 {
		t.Fatalf("Fired=%d Pending=%d", e.Fired(), e.Pending())
	}
}

func TestStepEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty queue reported work")
	}
}

// Property: for any random schedule, events fire in nondecreasing time order
// and the engine clock equals the last event time.
func TestRandomScheduleOrdered(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var fired []units.Time
		k := int(n%64) + 1
		for i := 0; i < k; i++ {
			at := units.Time(rng.Int63n(1000))
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		if len(fired) != k {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return e.Now() == fired[len(fired)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling a random subset removes exactly that subset.
func TestRandomCancel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		const n = 40
		ran := make([]bool, n)
		evs := make([]Event, n)
		for i := 0; i < n; i++ {
			i := i
			evs[i] = e.Schedule(units.Time(rng.Int63n(100)), func() { ran[i] = true })
		}
		cancelled := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				cancelled[i] = true
				e.Cancel(evs[i])
			}
		}
		e.RunAll()
		for i := 0; i < n; i++ {
			if ran[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Stop from inside an event must halt the run after that event, be
// observable via Stopped until the next Run, and be consumed by it.
func TestStopInsideEvent(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 6; i++ {
		e.Schedule(units.Time(i), func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.Run(100)
	if count != 2 {
		t.Fatalf("count = %d after in-event Stop, want 2", count)
	}
	if e.Stopped() {
		t.Fatal("Run returned without clearing the stop flag")
	}
	e.Run(100)
	if count != 6 {
		t.Fatalf("count = %d after resume, want 6", count)
	}
}

// Stop before Run persists (Stopped reports it), makes that Run execute
// nothing, and is consumed so the following Run proceeds.
func TestStopBeforeRun(t *testing.T) {
	e := New()
	ran := 0
	e.Schedule(1, func() { ran++ })
	e.Stop()
	if !e.Stopped() {
		t.Fatal("Stopped() false right after Stop")
	}
	e.RunAll()
	if ran != 0 {
		t.Fatal("stopped Run executed an event")
	}
	if e.Stopped() {
		t.Fatal("Run did not consume the stop flag")
	}
	e.RunAll()
	if ran != 1 {
		t.Fatal("engine did not resume after consuming Stop")
	}
}

// Cancelling an event that already fired must be a no-op even after its
// pooled record has been recycled for a newer event: the stale handle's
// generation no longer matches, so the newer event still fires.
func TestCancelFiredEvent(t *testing.T) {
	e := New()
	firstRan := false
	first := e.Schedule(1, func() { firstRan = true })
	e.RunAll()
	if !firstRan {
		t.Fatal("first event did not run")
	}
	secondRan := false
	e.Schedule(2, func() { secondRan = true }) // recycles first's record
	e.Cancel(first)                            // stale handle: must not touch the recycled record
	e.Cancel(first)
	e.RunAll()
	if !secondRan {
		t.Fatal("cancelling a fired event's stale handle killed a live event")
	}
}

// Cancelling an event from inside its own callback is a no-op.
func TestCancelSelfInsideCallback(t *testing.T) {
	e := New()
	var self Event
	after := false
	self = e.Schedule(1, func() {
		e.Cancel(self)
		e.Schedule(2, func() { after = true })
	})
	e.RunAll()
	if !after {
		t.Fatal("self-cancel corrupted the queue")
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	e := New()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+units.Time(i%100), fn)
		e.Step()
	}
	// Exactly one event fires per op; the explicit metric lets benchjson
	// derive ns/event uniformly across eventsim and netsim benchmarks.
	b.ReportMetric(1, "events/op")
}

// BenchmarkEngineScheduleCancel measures the schedule+cancel round trip —
// the rate-limiter and kick-timer pattern of netsim. The pooled records must
// make this allocation-free in steady state.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := New()
	fn := func() {}
	// Keep a standing population so cancellation exercises interior heap
	// removals, not just the root.
	var standing [64]Event
	for i := range standing {
		standing[i] = e.Schedule(units.Time(i+1000000), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(units.Time(i%1000), fn)
		e.Cancel(ev)
		j := i % len(standing)
		e.Cancel(standing[j])
		standing[j] = e.Schedule(units.Time(i+2000000), fn)
	}
}

// BenchmarkScheduleRunDeep keeps a standing population of 4096 pending
// events so every Schedule/Step works a heap ~6 levels deep (4-ary) — the
// regime where heap arity and cache locality matter, unlike the shallow
// queues of BenchmarkScheduleRun.
func BenchmarkScheduleRunDeep(b *testing.B) {
	e := New()
	fn := func() {}
	const standing = 4096
	for i := 0; i < standing; i++ {
		e.Schedule(units.Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+units.Time(standing+i%1024), fn)
		e.Step()
	}
	b.ReportMetric(1, "events/op")
}

func TestHookInterval(t *testing.T) {
	e := New()
	var chain func()
	n := 0
	chain = func() {
		n++
		if n < 100 {
			e.After(1, chain)
		}
	}
	e.Schedule(0, chain)
	calls := 0
	e.SetHook(10, func() bool { calls++; return true })
	e.RunAll()
	if n != 100 {
		t.Fatalf("ran %d events, want 100", n)
	}
	if calls != 10 {
		t.Fatalf("hook ran %d times for 100 events at interval 10, want 10", calls)
	}
}

func TestHookStopsRun(t *testing.T) {
	e := New()
	var chain func()
	n := 0
	chain = func() {
		n++
		e.After(1, chain) // unbounded: only the hook can end this run
	}
	e.Schedule(0, chain)
	e.SetHook(1, func() bool { return n < 25 })
	e.RunAll()
	if n != 25 {
		t.Fatalf("hook stopped after %d events, want 25", n)
	}
	if e.Stopped() {
		t.Fatal("hook-ended run left a pending stop flag")
	}
	// The hook decision is per-Run: with the hook cleared, the chain
	// resumes from where it stopped.
	e.ClearHook()
	e.Schedule(e.Now()+1000, func() {}) // horizon pin
	e.Run(e.Now() + 10)
	if n <= 25 {
		t.Fatal("cleared hook still stopping the run")
	}
}

func TestHookIntervalValidation(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("SetHook(0, fn) did not panic")
		}
	}()
	e.SetHook(0, func() bool { return true })
}
