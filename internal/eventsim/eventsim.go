// Package eventsim provides the discrete-event simulation engine the whole
// network simulator runs on: a virtual clock and a priority queue of timed
// callbacks. Events that share a timestamp fire in the order they were
// scheduled, which makes every run deterministic.
//
// The queue is an index-addressed 4-ary heap over a pool of event records.
// The wider node fans out the tree to a quarter of the binary depth and keeps
// each node's children in one or two cache lines, which is measurably faster
// on deep queues; because the comparator (time, sequence) is a total order,
// the pop sequence — and therefore every simulation result — is identical to
// the binary heap's.
// Records are recycled through a free list and addressed by stable ids, so
// the steady state of a simulation — schedule, fire, schedule again —
// allocates nothing. Handles returned by Schedule carry a generation
// counter: recycling a record bumps its generation, which makes Cancel of a
// stale handle (already fired or already cancelled) a safe no-op without any
// queue scan.
package eventsim

import (
	"fmt"

	"github.com/gfcsim/gfc/internal/units"
)

// Event is a handle to a scheduled callback, returned by Schedule and After
// and accepted by Cancel. It is a small value, free to copy and to discard.
// The zero Event is valid and refers to no scheduled callback.
type Event struct {
	id  int32
	gen uint32
	at  units.Time
}

// At reports when the event was scheduled to fire.
func (e Event) At() units.Time { return e.at }

// Slot reports the event's pooled-record index: a small, dense, non-negative
// integer that is stable for the event's lifetime and recycled after it fires
// or is cancelled. Callers using Slot to index side tables must validate the
// stored handle against the full Event (which carries the generation) before
// trusting the entry — see Peek/Absorb. The zero Event's slot is 0 and is
// only distinguishable by that generation check.
func (e Event) Slot() int { return int(e.id) }

// record is one pooled event. pos is its index in Engine.heap, -1 while the
// record sits on the free list. gen starts at 1 so the zero Event handle
// (gen 0) never matches a live record.
type record struct {
	at  units.Time
	seq uint64
	fn  func()
	gen uint32
	pos int32
}

// Engine is a single-threaded discrete-event scheduler. The zero value is
// ready to use.
type Engine struct {
	records []record
	free    []int32 // recycled record ids
	heap    []int32 // record ids ordered by (at, seq)
	now     units.Time
	seq     uint64
	fired   uint64
	stopped bool

	// Run-governor hook (SetHook): hookFn is consulted roughly every
	// hookEvery fired events during Run; nil when no governor is attached,
	// so the ungoverned hot path pays a single nil check per event. The
	// check is a fired-counter threshold rather than a modulo so that
	// Absorb — which credits events without a Step — cannot jump the
	// counter over an exact boundary and silently skip a governor check.
	hookFn    func() bool
	hookEvery uint64
	nextHook  uint64
}

// New returns a fresh engine with its clock at zero.
func New() *Engine { return &Engine{} }

// Now reports the current simulation time.
func (e *Engine) Now() units.Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// Stopped reports whether a Stop is pending, i.e. Stop was called and no Run
// has consumed it yet.
func (e *Engine) Stopped() bool { return e.stopped }

// alloc returns a record id off the free list, growing the pool when empty.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		id := e.free[n-1]
		e.free = e.free[:n-1]
		return id
	}
	e.records = append(e.records, record{gen: 1, pos: -1})
	return int32(len(e.records) - 1)
}

// release recycles a record that has fired or been cancelled. The generation
// bump invalidates every outstanding handle to it.
func (e *Engine) release(id int32) {
	r := &e.records[id]
	r.gen++
	r.fn = nil
	r.pos = -1
	e.free = append(e.free, id)
}

// Schedule runs fn at absolute time at. Scheduling in the past panics: it is
// always a logic error in a discrete-event model.
func (e *Engine) Schedule(at units.Time, fn func()) Event {
	if at < e.now {
		panic(fmt.Sprintf("eventsim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("eventsim: nil event function")
	}
	id := e.alloc()
	r := &e.records[id]
	r.at, r.seq, r.fn = at, e.seq, fn
	e.seq++
	r.pos = int32(len(e.heap))
	e.heap = append(e.heap, id)
	e.siftUp(r.pos)
	return Event{id: id, gen: r.gen, at: at}
}

// After runs fn after delay d from the current time.
func (e *Engine) After(d units.Time, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel prevents ev from firing. Cancelling the zero Event, an
// already-fired or an already-cancelled event is a no-op: the handle's
// generation no longer matches the (recycled) record.
func (e *Engine) Cancel(ev Event) {
	if ev.gen == 0 || int(ev.id) >= len(e.records) {
		return
	}
	r := &e.records[ev.id]
	if r.gen != ev.gen || r.pos < 0 {
		return
	}
	e.removeAt(r.pos)
	e.release(ev.id)
}

// Stop makes Run return after the currently executing event completes. When
// no Run is active the flag persists — observable via Stopped — and the next
// Run consumes it, executing nothing.
func (e *Engine) Stop() { e.stopped = true }

// SetHook installs a run-governor hook: during Run, fn is invoked after
// every `every` fired events (measured on the engine's lifetime Fired
// counter) and may return false to end the run after the current event.
// Unlike Stop, a hook-ended Run leaves no pending stop flag to consume.
// The hook is how netsim's RunBounded checks budgets, wall clocks and
// cancellation without the engine knowing about any of them; a nil fn (or
// ClearHook) detaches it. every < 1 panics.
func (e *Engine) SetHook(every uint64, fn func() bool) {
	if fn != nil && every < 1 {
		panic("eventsim: hook interval must be >= 1")
	}
	e.hookFn = fn
	e.hookEvery = every
	e.nextHook = e.fired + every
}

// ClearHook detaches any installed run-governor hook.
func (e *Engine) ClearHook() { e.hookFn = nil }

// Step executes the next pending event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	id := e.heap[0]
	e.removeAt(0)
	r := &e.records[id]
	fn := r.fn
	e.now = r.at
	e.fired++
	// Release before running so a Cancel of this event from inside its
	// own callback is already a stale-generation no-op.
	e.release(id)
	fn()
	return true
}

// Peek returns a handle to the next event that would fire — the head of the
// queue — without running or removing it, and reports whether one exists.
func (e *Engine) Peek() (Event, bool) {
	if len(e.heap) == 0 {
		return Event{}, false
	}
	id := e.heap[0]
	r := &e.records[id]
	return Event{id: id, gen: r.gen, at: r.at}, true
}

// Absorb removes ev from the queue and credits it to the fired counter
// WITHOUT invoking its callback, and reports whether it did so. It succeeds
// only when ev is exactly the queue head (same record and generation, per
// Peek) and is due at the current clock — i.e. when ev is provably the very
// next event the engine would fire, so performing its work inline cannot
// reorder anything. The caller assumes responsibility for doing that work.
// This is how netsim drains a burst of same-timestamp deliveries in one
// callback instead of N heap pops.
func (e *Engine) Absorb(ev Event) bool {
	if ev.gen == 0 || len(e.heap) == 0 {
		return false
	}
	id := e.heap[0]
	r := &e.records[id]
	if id != ev.id || r.gen != ev.gen || r.at != e.now {
		return false
	}
	e.removeAt(0)
	e.fired++
	e.release(id)
	return true
}

// Run executes events until the queue drains, the clock passes until, or
// Stop is called. It returns the time of the last executed event (or the
// unchanged clock when nothing ran). Events scheduled at exactly until still
// execute. The stop flag is cleared when Run returns, so a stopped engine
// observably resumes on the next Run.
func (e *Engine) Run(until units.Time) units.Time {
	defer func() { e.stopped = false }()
	for !e.stopped && len(e.heap) > 0 {
		// Peek: do not advance past the horizon.
		if e.records[e.heap[0]].at > until {
			break
		}
		e.Step()
		if e.hookFn != nil && e.fired >= e.nextHook {
			e.nextHook = e.fired + e.hookEvery
			if !e.hookFn() {
				break
			}
		}
	}
	return e.now
}

// RunAll executes events until the queue is empty or Stop is called.
func (e *Engine) RunAll() units.Time { return e.Run(units.Never) }

// less orders record ids by (time, sequence).
func (e *Engine) less(a, b int32) bool {
	ra, rb := &e.records[a], &e.records[b]
	if ra.at != rb.at {
		return ra.at < rb.at
	}
	return ra.seq < rb.seq
}

// Heap layout: 4-ary, node i has parent (i-1)/4 and children 4i+1..4i+4.

// siftUp restores heap order from position i toward the root. The moving
// element's key is loaded once; each level costs a single record fetch.
func (e *Engine) siftUp(i int32) {
	h, recs := e.heap, e.records
	id := h[i]
	at, seq := recs[id].at, recs[id].seq
	for i > 0 {
		parent := (i - 1) >> 2
		p := &recs[h[parent]]
		if at > p.at || (at == p.at && seq > p.seq) {
			break
		}
		h[i] = h[parent]
		p.pos = i
		i = parent
	}
	h[i] = id
	recs[id].pos = i
}

// siftDown restores heap order from position i toward the leaves and reports
// whether the element moved. The winning child's key is kept in registers
// across the up-to-4-way scan so each child costs one record fetch.
func (e *Engine) siftDown(i int32) bool {
	h, recs := e.heap, e.records
	n := int32(len(h))
	id := h[i]
	at, seq := recs[id].at, recs[id].seq
	start := i
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		// Smallest of the up-to-4 children.
		m := &recs[h[c]]
		end := c + 4
		if end > n {
			end = n
		}
		for k := c + 1; k < end; k++ {
			r := &recs[h[k]]
			if r.at < m.at || (r.at == m.at && r.seq < m.seq) {
				c, m = k, r
			}
		}
		if at < m.at || (at == m.at && seq < m.seq) {
			break
		}
		h[i] = h[c]
		m.pos = i
		i = c
	}
	h[i] = id
	recs[id].pos = i
	return i != start
}

// removeAt deletes the element at heap position i, preserving heap order.
func (e *Engine) removeAt(i int32) {
	h := e.heap
	n := int32(len(h)) - 1
	e.records[h[i]].pos = -1
	if i == n {
		e.heap = h[:n]
		return
	}
	h[i] = h[n]
	e.records[h[i]].pos = i
	e.heap = h[:n]
	if !e.siftDown(i) {
		e.siftUp(i)
	}
}
