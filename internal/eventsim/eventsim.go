// Package eventsim provides the discrete-event simulation engine the whole
// network simulator runs on: a virtual clock and a priority queue of timed
// callbacks. Events that share a timestamp fire in the order they were
// scheduled, which makes every run deterministic.
package eventsim

import (
	"container/heap"
	"fmt"

	"github.com/gfcsim/gfc/internal/units"
)

// Event is a scheduled callback. Handles returned by the scheduler can be
// used to cancel an event before it fires.
type Event struct {
	at     units.Time
	seq    uint64
	fn     func()
	index  int // heap index, -1 once removed
	cancel bool
}

// At reports when the event is (or was) scheduled to fire.
func (e *Event) At() units.Time { return e.at }

// eventQueue implements heap.Interface ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. The zero value is
// ready to use.
type Engine struct {
	queue   eventQueue
	now     units.Time
	seq     uint64
	fired   uint64
	stopped bool
}

// New returns a fresh engine with its clock at zero.
func New() *Engine { return &Engine{} }

// Now reports the current simulation time.
func (e *Engine) Now() units.Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled (including cancelled ones
// not yet popped).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn at absolute time at. Scheduling in the past panics: it is
// always a logic error in a discrete-event model.
func (e *Engine) Schedule(at units.Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("eventsim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("eventsim: nil event function")
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After runs fn after delay d from the current time.
func (e *Engine) After(d units.Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel prevents ev from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancel || ev.index < 0 {
		if ev != nil {
			ev.cancel = true
		}
		return
	}
	ev.cancel = true
	heap.Remove(&e.queue, ev.index)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the next pending event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains, the clock passes until, or
// Stop is called. It returns the time of the last executed event (or the
// unchanged clock when nothing ran). Events scheduled at exactly until still
// execute.
func (e *Engine) Run(until units.Time) units.Time {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		// Peek: do not advance past the horizon.
		if e.queue[0].at > until {
			break
		}
		e.Step()
	}
	return e.now
}

// RunAll executes events until the queue is empty or Stop is called.
func (e *Engine) RunAll() units.Time { return e.Run(units.Never) }
