package eventsim

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/gfcsim/gfc/internal/units"
)

// This file property-tests the 4-ary heap against a reference model: a plain
// list of pending (time, insertion-sequence) pairs whose expected fire order
// is a stable sort by time. Any heap bug — wrong parent/child arithmetic,
// broken removeAt hole-filling, pos corruption — shows up as a divergence
// between the engine's fire order and the model's.

// refEvent is one scheduled event in the reference model.
type refEvent struct {
	at  units.Time
	seq int // insertion order, the FIFO tie-break
}

// runModelComparison drives an engine and a reference model through a random
// interleaving of Schedule, After, Cancel (live and stale handles) and Step,
// then drains both and compares the complete fire order.
func runModelComparison(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	e := New()

	type live struct {
		ev  Event
		ref refEvent
	}
	var (
		pending []live     // scheduled, not yet fired or cancelled
		stale   []Event    // handles whose events fired or were cancelled
		fired   []refEvent // engine fire order
		model   []refEvent // expected: filled at drain time
		seq     int
	)
	schedule := func(at units.Time) {
		re := refEvent{at: at, seq: seq}
		seq++
		ev := e.Schedule(at, func() { fired = append(fired, re) })
		pending = append(pending, live{ev: ev, ref: re})
	}

	const ops = 400
	for op := 0; op < ops; op++ {
		switch k := rng.Intn(10); {
		case k < 4: // Schedule at an absolute time, ties likely
			schedule(e.Now() + units.Time(rng.Intn(16)))
		case k < 6: // After, including zero delay
			at := e.Now() + units.Time(rng.Intn(8))
			re := refEvent{at: at, seq: seq}
			seq++
			ev := e.After(at-e.Now(), func() { fired = append(fired, re) })
			pending = append(pending, live{ev: ev, ref: re})
		case k < 8: // Cancel a random live handle: removeAt at a random
			// heap position — over many ops this hits leaf, root and
			// interior nodes.
			if len(pending) > 0 {
				i := rng.Intn(len(pending))
				e.Cancel(pending[i].ev)
				stale = append(stale, pending[i].ev)
				pending = append(pending[:i], pending[i+1:]...)
			}
		case k < 9: // Cancel a stale handle: must be a no-op
			if len(stale) > 0 {
				e.Cancel(stale[rng.Intn(len(stale))])
			}
		default: // Step: fire the earliest pending event
			if e.Step() {
				// The fired event leaves pending; find it by the
				// engine-reported order later. Remove the model's
				// minimum (at, seq) — that is what must have fired.
				min := 0
				for i := 1; i < len(pending); i++ {
					if pending[i].ref.at < pending[min].ref.at ||
						(pending[i].ref.at == pending[min].ref.at &&
							pending[i].ref.seq < pending[min].ref.seq) {
						min = i
					}
				}
				model = append(model, pending[min].ref)
				stale = append(stale, pending[min].ev)
				pending = append(pending[:min], pending[min+1:]...)
			}
		}
	}

	// Drain: everything still pending fires in (at, seq) order.
	rest := make([]refEvent, 0, len(pending))
	for _, l := range pending {
		rest = append(rest, l.ref)
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].at != rest[j].at {
			return rest[i].at < rest[j].at
		}
		return rest[i].seq < rest[j].seq
	})
	model = append(model, rest...)
	e.RunAll()

	if len(fired) != len(model) {
		t.Fatalf("seed %d: engine fired %d events, model expects %d", seed, len(fired), len(model))
	}
	for i := range model {
		if fired[i] != model[i] {
			t.Fatalf("seed %d: fire order diverges at %d: engine %+v, model %+v",
				seed, i, fired[i], model[i])
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("seed %d: %d events left pending after drain", seed, e.Pending())
	}
}

func TestHeapAgainstReferenceModel(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		runModelComparison(t, seed)
	}
}

// TestCancelAtEveryHeapPosition schedules n events and cancels exactly one at
// each possible heap position (root, every interior node, every leaf),
// checking the survivors still fire in order. This pins removeAt's
// hole-filling for both the siftDown and siftUp repair paths of the 4-ary
// layout.
func TestCancelAtEveryHeapPosition(t *testing.T) {
	const n = 85 // > 4 full levels of a 4-ary heap (1+4+16+64)
	for victim := 0; victim < n; victim++ {
		e := New()
		evs := make([]Event, n)
		var fired []int
		// Shuffled times so heap positions differ from schedule order.
		rng := rand.New(rand.NewSource(int64(victim)))
		times := rng.Perm(n)
		for i := 0; i < n; i++ {
			i := i
			evs[i] = e.Schedule(units.Time(times[i]), func() { fired = append(fired, times[i]) })
		}
		e.Cancel(evs[victim])
		e.RunAll()
		if len(fired) != n-1 {
			t.Fatalf("victim %d: fired %d events, want %d", victim, len(fired), n-1)
		}
		if !sort.IntsAreSorted(fired) {
			t.Fatalf("victim %d: out-of-order fire sequence %v", victim, fired)
		}
		for _, ts := range fired {
			if ts == times[victim] {
				t.Fatalf("victim %d: cancelled event fired", victim)
			}
		}
	}
}

// Equal-timestamp FIFO order must hold through interleaved cancellations.
func TestFIFOTiesSurviveCancels(t *testing.T) {
	e := New()
	const n = 64
	var fired []int
	evs := make([]Event, n)
	for i := 0; i < n; i++ {
		i := i
		evs[i] = e.Schedule(7, func() { fired = append(fired, i) })
	}
	for i := 0; i < n; i += 3 {
		e.Cancel(evs[i])
	}
	e.RunAll()
	if !sort.IntsAreSorted(fired) {
		t.Fatalf("FIFO tie order broken after cancels: %v", fired)
	}
	for _, i := range fired {
		if i%3 == 0 {
			t.Fatalf("cancelled event %d fired", i)
		}
	}
}

func TestPeek(t *testing.T) {
	e := New()
	if _, ok := e.Peek(); ok {
		t.Fatal("Peek on empty queue reported an event")
	}
	e.Schedule(20, func() {})
	first := e.Schedule(10, func() {})
	top, ok := e.Peek()
	if !ok || top != first || top.At() != 10 {
		t.Fatalf("Peek = %+v, %v; want the t=10 event", top, ok)
	}
	if e.Pending() != 2 {
		t.Fatal("Peek consumed an event")
	}
}

func TestAbsorb(t *testing.T) {
	e := New()
	ran := false
	later := e.Schedule(10, func() { ran = true })

	// Not due yet: the head is at t=10 but the clock is at 0.
	if e.Absorb(later) {
		t.Fatal("Absorb succeeded for an event not due at the current clock")
	}

	e.Schedule(5, func() {
		// Inside the t=5 callback, head is the t=10 event: still not due.
		if e.Absorb(later) {
			t.Fatal("Absorb succeeded at t=5 for a t=10 head")
		}
	})
	e.Run(5)

	// A due event that is not the head must not absorb; the head must.
	e.Schedule(10, func() {
		// Clock is 10. Both x and y are due now, but only x is the head.
		x := e.Schedule(10, func() { t.Error("absorbed event x ran") })
		y := e.Schedule(10, func() {})
		if e.Absorb(y) {
			t.Fatal("Absorb succeeded for a due but non-head event")
		}
		if !e.Absorb(x) {
			t.Fatal("Absorb of the due head failed")
		}
	})
	e.RunAll()
	if !ran {
		t.Fatal("t=10 event did not run")
	}

	// Absorb exactly at the due instant, from inside a same-time callback.
	e2 := New()
	count := 0
	var absorbable Event
	e2.Schedule(1, func() {
		if !e2.Absorb(absorbable) {
			t.Fatal("Absorb of the due head failed")
		}
		// Absorbing credits the fired counter without running the fn.
		if e2.Fired() != 2 {
			t.Fatalf("Fired = %d after absorb, want 2", e2.Fired())
		}
		// A second absorb of the same handle is stale.
		if e2.Absorb(absorbable) {
			t.Fatal("double Absorb succeeded")
		}
	})
	absorbable = e2.Schedule(1, func() { count++ })
	e2.RunAll()
	if count != 0 {
		t.Fatal("absorbed event's callback ran")
	}
	if e2.Absorb(Event{}) {
		t.Fatal("Absorb of the zero Event succeeded")
	}
}

// Absorbed events must not let the governor hook skip its check: the hook
// fires on a fired-counter threshold, not an exact multiple.
func TestHookSurvivesAbsorb(t *testing.T) {
	e := New()
	var chain func()
	n := 0
	chain = func() {
		n++
		// Schedule two same-time events and absorb one, jumping the
		// fired counter by 2 per callback.
		tw := e.Schedule(e.Now(), func() {})
		if !e.Absorb(tw) {
			t.Fatal("absorb of just-scheduled due head failed")
		}
		e.After(1, chain)
	}
	e.Schedule(0, chain)
	calls := 0
	e.SetHook(3, func() bool { calls++; return calls < 5 })
	e.RunAll()
	if calls != 5 {
		t.Fatalf("hook ran %d times, want 5 (run must end on the 5th)", calls)
	}
}

// Slot must be a stable dense index for a live event and recycle afterwards.
func TestSlotRecycling(t *testing.T) {
	e := New()
	a := e.Schedule(1, func() {})
	slot := a.Slot()
	if slot < 0 {
		t.Fatalf("Slot = %d, want non-negative", slot)
	}
	e.RunAll()
	b := e.Schedule(2, func() {})
	if b.Slot() != slot {
		t.Fatalf("freed slot %d not recycled, got %d", slot, b.Slot())
	}
	// The recycled slot's new handle differs (generation), so a Peek
	// comparison distinguishes them.
	top, ok := e.Peek()
	if !ok || top != b || top == a {
		t.Fatalf("Peek = %+v; must match the live handle only", top)
	}
}
