package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/gfcsim/gfc/internal/units"
)

func TestTauPaperValues(t *testing.T) {
	// §5.4: CEE (MTU=1.5KB), t_w=1µs, t_r=3µs → τ = 7.4/5.6/5.2 µs at
	// 10/40/100 Gb/s.
	cases := []struct {
		c    units.Rate
		mtu  units.Size
		want units.Time
	}{
		{10 * units.Gbps, 1500, units.Time(7.4 * float64(units.Microsecond))},
		{40 * units.Gbps, 1500, units.Time(5.6 * float64(units.Microsecond))},
		{100 * units.Gbps, 1500, units.Time(5.24 * float64(units.Microsecond))},
		// InfiniBand MTU=4KB: 11.4/6.6/5.64 µs.
		{10 * units.Gbps, 4000, units.Time(11.4 * float64(units.Microsecond))},
		{40 * units.Gbps, 4000, units.Time(6.6 * float64(units.Microsecond))},
	}
	for _, c := range cases {
		got := Tau(c.c, c.mtu, units.Microsecond, 3*units.Microsecond)
		diff := got - c.want
		if diff < 0 {
			diff = -diff
		}
		if diff > 50*units.Nanosecond {
			t.Errorf("Tau(%v, %v) = %v, want ≈%v", c.c, c.mtu, got, c.want)
		}
	}
}

func TestConceptualB0Bound(t *testing.T) {
	// Bm=100KB, C=10G, τ=1µs: 4Cτ = 5000B → bound 95000.
	got := ConceptualB0Bound(100*units.KB, 10*units.Gbps, units.Microsecond)
	if got != 95000 {
		t.Errorf("bound = %d, want 95000", got)
	}
}

func TestTimeBasedB0Bound(t *testing.T) {
	// τ = T: (√1+1)² = 4, so bound = Bm − 4CT, same as Theorem 4.1 with τ=T.
	bm := 1000 * units.KB
	c := 10 * units.Gbps
	T := 10 * units.Microsecond
	got := TimeBasedB0Bound(bm, c, T, T)
	want := bm - 4*units.BytesIn(c, T)
	if got != want {
		t.Errorf("bound = %v, want %v", got, want)
	}
	// τ → 0: factor → 1, bound → Bm − CT.
	got0 := TimeBasedB0Bound(bm, c, 0, T)
	want0 := bm - units.BytesIn(c, T)
	if got0 != want0 {
		t.Errorf("τ=0 bound = %v, want %v", got0, want0)
	}
}

func TestTimeBasedB0BoundPaperMagnitude(t *testing.T) {
	// §5.4: at 10G with the CBFC-recommended T (65535B worth ≈ 52.4µs)
	// and τ=7.4µs, (√(τ/T)+1)²CT ≤ 140.8KB.
	T := units.TransmissionTime(65535, 10*units.Gbps)
	tau := Tau(10*units.Gbps, 1500, units.Microsecond, 3*units.Microsecond)
	need := 1000*units.KB - TimeBasedB0Bound(1000*units.KB, 10*units.Gbps, tau, T)
	if need < 120*units.KB || need > 145*units.KB {
		t.Errorf("reserved headroom = %v, paper says ≤ 140.8KB", need)
	}
}

func TestTimeBasedB0BoundBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive period did not panic")
		}
	}()
	TimeBasedB0Bound(units.KB, units.Gbps, 0, 0)
}

func TestContinuousMapping(t *testing.T) {
	m := ContinuousMapping{C: 10 * units.Gbps, B0: 50 * units.KB, Bm: 100 * units.KB}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Rate(0); got != 10*units.Gbps {
		t.Errorf("Rate(0) = %v", got)
	}
	if got := m.Rate(50 * units.KB); got != 10*units.Gbps {
		t.Errorf("Rate(B0) = %v, want C", got)
	}
	if got := m.Rate(75 * units.KB); got != 5*units.Gbps {
		t.Errorf("Rate(75KB) = %v, want 5Gbps", got)
	}
	if got := m.Rate(100 * units.KB); got != 0 {
		t.Errorf("Rate(Bm) = %v, want 0", got)
	}
	if got := m.Rate(200 * units.KB); got != 0 {
		t.Errorf("Rate(>Bm) = %v, want 0", got)
	}
}

func TestContinuousMappingValidate(t *testing.T) {
	bad := []ContinuousMapping{
		{C: 0, B0: 1, Bm: 2},
		{C: units.Gbps, B0: -1, Bm: 2},
		{C: units.Gbps, B0: 5, Bm: 5},
		{C: units.Gbps, B0: 6, Bm: 5},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("case %d: Validate accepted %+v", i, m)
		}
	}
}

func TestSteadyQueueFig5(t *testing.T) {
	// Figure 5: C=10G, B0=50KB, Bm=100KB, drain 5G → B_s = 75KB.
	m := ContinuousMapping{C: 10 * units.Gbps, B0: 50 * units.KB, Bm: 100 * units.KB}
	if got := m.SteadyQueue(5 * units.Gbps); got != 75*units.KB {
		t.Errorf("SteadyQueue(5G) = %v, want 75KB", got)
	}
	if got := m.SteadyQueue(10 * units.Gbps); got != 50*units.KB {
		t.Errorf("SteadyQueue(C) = %v, want B0", got)
	}
	if got := m.SteadyQueue(0); got != 100*units.KB {
		t.Errorf("SteadyQueue(0) = %v, want Bm", got)
	}
}

func mustStageTable(t *testing.T, c units.Rate, bm, b1 units.Size) *StageTable {
	t.Helper()
	st, err := NewStageTable(c, bm, b1)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStageTableConstruction(t *testing.T) {
	// Testbed parameters of §6.1: C=10G, Bm=1MB, B1=750KB.
	st := mustStageTable(t, 10*units.Gbps, 1000*units.KB, 750*units.KB)
	if st.Threshold(1) != 750*units.KB {
		t.Errorf("B1 = %v", st.Threshold(1))
	}
	// B2 = Bm − (Bm−B1)/2 = 875KB; R1 = 5G, R2 = 2.5G.
	if st.Threshold(2) != 875*units.KB {
		t.Errorf("B2 = %v, want 875KB", st.Threshold(2))
	}
	if st.StageRate(1) != 5*units.Gbps || st.StageRate(2) != 2.5*units.Gbps {
		t.Errorf("R1=%v R2=%v", st.StageRate(1), st.StageRate(2))
	}
}

func TestStageTablePaperStageCounts(t *testing.T) {
	// §5.4: with B_m − B_1 = 2Cτ, N = 16/18/20 at 10/40/100 Gb/s (CEE τ).
	cases := []struct {
		c     units.Rate
		tau   units.Time
		wantN int
	}{
		{10 * units.Gbps, Tau(10*units.Gbps, 1500, units.Microsecond, 3*units.Microsecond), 16},
		{40 * units.Gbps, Tau(40*units.Gbps, 1500, units.Microsecond, 3*units.Microsecond), 18},
		{100 * units.Gbps, Tau(100*units.Gbps, 1500, units.Microsecond, 3*units.Microsecond), 20},
	}
	for _, c := range cases {
		bm := 10 * units.MB
		b1 := BufferBasedB1Bound(bm, c.c, c.tau)
		st := mustStageTable(t, c.c, bm, b1)
		// The paper's exact stop rule ("B_N − B_{N−1} ≤ 8b") is stated
		// loosely; allow a ±2 convention difference around its N.
		if got := st.Stages(); got < c.wantN-2 || got > c.wantN+2 {
			t.Errorf("C=%v: N = %d, paper says %d", c.c, got, c.wantN)
		}
	}
}

func TestStageTableErrors(t *testing.T) {
	if _, err := NewStageTable(0, 100, 50); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewStageTable(units.Gbps, 100, 0); err == nil {
		t.Error("zero B1 accepted")
	}
	if _, err := NewStageTable(units.Gbps, 100, 100); err == nil {
		t.Error("B1 == Bm accepted")
	}
}

func TestNewSafeStageTable(t *testing.T) {
	c := 10 * units.Gbps
	tau := 10 * units.Microsecond
	bm := 1000 * units.KB
	bound := BufferBasedB1Bound(bm, c, tau) // 1000KB − 25KB = 975KB
	if _, err := NewSafeStageTable(c, bm, bound, tau); err != nil {
		t.Errorf("B1 at bound rejected: %v", err)
	}
	if _, err := NewSafeStageTable(c, bm, bound+1, tau); err == nil {
		t.Error("B1 above bound accepted")
	}
}

func TestStageFor(t *testing.T) {
	st := mustStageTable(t, 10*units.Gbps, 1000*units.KB, 750*units.KB)
	cases := []struct {
		q    units.Size
		want int
	}{
		{0, 0},
		{749999, 0},
		{750 * units.KB, 1},
		{874999, 1},
		{875 * units.KB, 2},
		{1000 * units.KB, st.Stages()},
		{2000 * units.KB, st.Stages()},
	}
	for _, c := range cases {
		if got := st.StageFor(c.q); got != c.want {
			t.Errorf("StageFor(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestStageRateNeverZero(t *testing.T) {
	st := mustStageTable(t, 10*units.Gbps, 1000*units.KB, 750*units.KB)
	if r := st.StageRate(st.Stages()); r <= 0 {
		t.Fatalf("final stage rate %v must stay positive", r)
	}
	if r := st.RateFor(100 * units.MB); r <= 0 {
		t.Fatalf("RateFor(huge q) = %v must stay positive", r)
	}
}

func TestStageRateClampsAboveN(t *testing.T) {
	st := mustStageTable(t, 10*units.Gbps, 1000*units.KB, 750*units.KB)
	if st.StageRate(st.Stages()+5) != st.StageRate(st.Stages()) {
		t.Error("StageRate beyond N does not clamp")
	}
	if st.StageRate(0) != 10*units.Gbps || st.StageRate(-1) != 10*units.Gbps {
		t.Error("stage 0 is not line rate")
	}
}

func TestOverheadModelPaperValues(t *testing.T) {
	// §4.2: m=64B, τ=7.4µs → worst 69 Mb/s (0.69%), steady 8.6 Mb/s.
	o := OverheadModel{MessageSize: 64, Tau: units.Time(7.4 * float64(units.Microsecond))}
	w := o.WorstCase()
	if math.Abs(float64(w)-69.2e6) > 1e6 {
		t.Errorf("WorstCase = %v, want ≈69Mbps", w)
	}
	s := o.Steady()
	if math.Abs(float64(s)-8.65e6) > 0.2e6 {
		t.Errorf("Steady = %v, want ≈8.6Mbps", s)
	}
	if f := Fraction(w, 10*units.Gbps); math.Abs(f-0.0069) > 0.0002 {
		t.Errorf("worst fraction = %v, want ≈0.0069", f)
	}
}

// Property: stage thresholds are strictly increasing, rates strictly
// decreasing and exactly halving, and the mapping is consistent with
// thresholds.
func TestStageTableInvariants(t *testing.T) {
	f := func(b1Frac uint8) bool {
		bm := 1000 * units.KB
		b1 := units.Size(1+int64(b1Frac)%999) * units.KB
		st, err := NewStageTable(10*units.Gbps, bm, b1)
		if err != nil {
			return false
		}
		prevT := units.Size(-1)
		prevR := 2 * st.C
		for k := 1; k <= st.Stages(); k++ {
			thr, r := st.Threshold(k), st.StageRate(k)
			if thr <= prevT || thr > bm {
				return false
			}
			if r <= 0 || r*2 != prevR && k > 1 {
				return false
			}
			// Mapping consistency at boundary.
			if st.StageFor(thr) != k {
				return false
			}
			if thr > 0 && st.StageFor(thr-1) != k-1 {
				return false
			}
			prevT, prevR = thr, r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the continuous mapping is monotonically non-increasing in q and
// the steady queue is a fixed point: Rate(SteadyQueue(d)) ≈ d.
func TestContinuousMappingProperties(t *testing.T) {
	m := ContinuousMapping{C: 10 * units.Gbps, B0: 50 * units.KB, Bm: 100 * units.KB}
	f := func(a, b uint32) bool {
		q1 := units.Size(a % 120000)
		q2 := units.Size(b % 120000)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		if m.Rate(q1) < m.Rate(q2) {
			return false
		}
		drain := units.Rate(a%10000) * units.Mbps
		if drain == 0 || drain > m.C {
			return true
		}
		qs := m.SteadyQueue(drain)
		got := m.Rate(qs)
		return math.Abs(float64(got-drain)) <= float64(m.C)/float64(m.Bm-m.B0)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Theorem 4.1 stage-spacing requirement (equation 1) holds for
// safe tables: B_{k+1} − B_k ≥ R_{k−1}·τ... with equality allowed at the
// bound. We verify the derived requirement span ≥ 2Cτ ⇒ every stage is long
// enough for its feedback to take effect.
func TestStageSpacingSatisfiesEq1(t *testing.T) {
	c := 10 * units.Gbps
	tau := 7400 * units.Nanosecond
	bm := 1000 * units.KB
	b1 := BufferBasedB1Bound(bm, c, tau)
	st, err := NewSafeStageTable(c, bm, b1, tau)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < st.Stages(); k++ {
		gap := st.Threshold(k+1) - st.Threshold(k)
		need := units.BytesIn(st.StageRate(k-1), tau)
		if gap < need {
			t.Errorf("stage %d: gap %v < R_{k-1}τ %v", k, gap, need)
		}
	}
}

func TestStageTableRatio(t *testing.T) {
	// r = 3/4: rates shrink slower, more stages, thresholds still
	// geometric per equation (2).
	st, err := NewStageTableRatio(10*units.Gbps, 1000*units.KB, 750*units.KB, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.StageRate(1); got != 7.5*units.Gbps {
		t.Errorf("R1 = %v, want 7.5G", got)
	}
	if got := st.StageRate(2); got != 5.625*units.Gbps {
		t.Errorf("R2 = %v, want 5.625G", got)
	}
	// B2 = Bm − (Bm−B1)·0.75 = 1000 − 187.5 = 812.5KB.
	if got := st.Threshold(2); got != 812500 {
		t.Errorf("B2 = %v, want 812.5KB", got)
	}
	// More stages than the r=1/2 table over the same span.
	half, err := NewStageTable(10*units.Gbps, 1000*units.KB, 750*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stages() <= half.Stages() {
		t.Errorf("r=3/4 stages %d not more than r=1/2's %d", st.Stages(), half.Stages())
	}
}

func TestStageTableRatioBounds(t *testing.T) {
	if _, err := NewStageTableRatio(units.Gbps, 100, 50, 0.76); err == nil {
		t.Error("ratio above 3/4 accepted (violates equation 3)")
	}
	if _, err := NewStageTableRatio(units.Gbps, 100, 50, 0); err == nil {
		t.Error("zero ratio accepted")
	}
	if _, err := NewStageTableRatio(units.Gbps, 100, 50, -0.5); err == nil {
		t.Error("negative ratio accepted")
	}
}

// Property: for any legal ratio the generalised table keeps strictly
// increasing thresholds, strictly decreasing rates with the exact ratio, and
// consistent StageFor mapping.
func TestStageTableRatioInvariants(t *testing.T) {
	f := func(rr uint8, b1Frac uint8) bool {
		ratio := 0.25 + float64(rr%50)/100 // 0.25 .. 0.74
		bm := 1000 * units.KB
		b1 := units.Size(100+int64(b1Frac)%800) * units.KB
		st, err := NewStageTableRatio(10*units.Gbps, bm, b1, ratio)
		if err != nil {
			return false
		}
		prevT := units.Size(-1)
		for k := 1; k <= st.Stages(); k++ {
			thr := st.Threshold(k)
			if thr <= prevT || thr > bm {
				return false
			}
			if st.StageFor(thr) != k {
				return false
			}
			if k > 1 {
				want := float64(st.StageRate(k-1)) * ratio
				got := float64(st.StageRate(k))
				if got < want*0.999 || got > want*1.001 {
					return false
				}
			}
			prevT = thr
		}
		return st.StageRate(st.Stages()) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: StageFor is monotone non-decreasing in q over the whole input
// range (not just at thresholds), StageRate is non-increasing in k, and
// stage 0 is always line rate — the monotone behaviour the runtime invariant
// checker (internal/metrics) assumes of every table it validates.
func TestStageTableMonotoneProperties(t *testing.T) {
	f := func(b1Frac uint8, ratioFrac uint8, qa, qb uint32) bool {
		bm := 1000 * units.KB
		b1 := units.Size(100+int64(b1Frac)%800) * units.KB
		ratio := 0.25 + float64(ratioFrac%50)/100 // (0.25, 0.75), eq. 3 range
		st, err := NewStageTableRatio(10*units.Gbps, bm, b1, ratio)
		if err != nil {
			return false
		}
		if st.StageRate(0) != st.C {
			return false
		}
		// StageRate non-increasing in k, including the clamp past Stages().
		for k := 1; k <= st.Stages()+2; k++ {
			if st.StageRate(k) > st.StageRate(k-1) {
				return false
			}
		}
		// StageFor monotone: q1 ≤ q2 ⇒ StageFor(q1) ≤ StageFor(q2), sampled
		// over queue lengths beyond Bm as well.
		q1 := units.Size(qa) % (bm + bm/4)
		q2 := units.Size(qb) % (bm + bm/4)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		if st.StageFor(q1) > st.StageFor(q2) {
			return false
		}
		// RateFor is the composition, so it must be non-increasing too.
		return st.RateFor(q1) >= st.RateFor(q2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
