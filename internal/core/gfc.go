// Package core implements the mathematics of Gentle Flow Control — the
// paper's primary contribution. It provides:
//
//   - the conceptual (continuous) mapping function from ingress queue length
//     to upstream sending rate (§4.1, Figure 4b);
//   - the multi-stage step mapping function of practical buffer-based GFC
//     (§4.2, Figure 6), with the stage construction R_k = C/2^k and
//     B_m − B_k = (B_m − B_0)/2^k derived from equations (1)–(5);
//   - the hold-and-wait–elimination bounds of Theorem 4.1 (conceptual GFC:
//     B_0 ≤ B_m − 4Cτ) and Theorem 5.1 (time-based GFC:
//     B_0 ≤ B_m − (√(τ/T)+1)²·CT);
//   - the feedback-delay model τ of §5.4 (equation 6); and
//   - the feedback bandwidth-overhead model of §4.2.
//
// Simulation lives elsewhere; everything here is closed-form and pure.
package core

import (
	"fmt"
	"math"

	"github.com/gfcsim/gfc/internal/units"
)

// Tau bounds the worst-case feedback latency τ of equation (6): the interval
// between the receiver generating a feedback message and the receiver
// perceiving the changed input rate.
//
//	τ ≤ 2·MTU/C + 2·t_w + t_r
//
// where the two MTU/C terms are the worst-case waits for an in-flight packet
// to finish (once before the message departs, once before the sender can
// retime its output), t_w is the one-way wire latency and t_r the sender's
// message-processing time (≤ 3 µs on commodity hardware, per Cisco [10]).
func Tau(c units.Rate, mtu units.Size, tw, tr units.Time) units.Time {
	return 2*units.TransmissionTime(mtu, c) + 2*tw + tr
}

// ConceptualB0Bound returns the largest activation threshold B_0 that
// Theorem 4.1 permits for conceptual GFC: B_0 = B_m − 4Cτ. A larger B_0
// risks the queue overshooting to B_m, which would stall the sender and
// reintroduce hold-and-wait.
func ConceptualB0Bound(bm units.Size, c units.Rate, tau units.Time) units.Size {
	return bm - 4*units.BytesIn(c, tau)
}

// TimeBasedB0Bound returns the largest B_0 Theorem 5.1 permits for
// time-based GFC with feedback period T: B_0 = B_m − (√(τ/T)+1)²·CT.
func TimeBasedB0Bound(bm units.Size, c units.Rate, tau, period units.Time) units.Size {
	if period <= 0 {
		panic("core: non-positive feedback period")
	}
	f := math.Sqrt(float64(tau)/float64(period)) + 1
	need := units.Size(math.Ceil(f * f * float64(units.BytesIn(c, period))))
	return bm - need
}

// BufferBasedB1Bound returns the largest first-stage threshold B_1 for
// buffer-based GFC: B_1 = B_m − 2Cτ (§5.4). It follows from Theorem 4.1 and
// the stage inequalities (1)–(5): the buffer above B_1 must absorb two
// feedback latencies' worth of line-rate arrivals.
func BufferBasedB1Bound(bm units.Size, c units.Rate, tau units.Time) units.Size {
	return bm - 2*units.BytesIn(c, tau)
}

// ContinuousMapping is the conceptual mapping function of Figure 4(b) and
// the rate law of time-based GFC's Rate Adjuster: line rate below B0, then a
// linear decrease that reaches zero at Bm.
type ContinuousMapping struct {
	C  units.Rate // link capacity
	B0 units.Size // activation threshold
	Bm units.Size // mapping ceiling (set to the buffer size B in practice)
}

// Validate reports an error when the mapping parameters are inconsistent.
func (m ContinuousMapping) Validate() error {
	if m.C <= 0 {
		return fmt.Errorf("core: capacity %v must be positive", m.C)
	}
	if m.B0 < 0 || m.Bm <= m.B0 {
		return fmt.Errorf("core: need 0 <= B0 (%v) < Bm (%v)", m.B0, m.Bm)
	}
	return nil
}

// Rate maps an ingress queue length to the upstream sending rate.
func (m ContinuousMapping) Rate(q units.Size) units.Rate {
	switch {
	case q <= m.B0:
		return m.C
	case q >= m.Bm:
		return 0
	default:
		return m.C * units.Rate(m.Bm-q) / units.Rate(m.Bm-m.B0)
	}
}

// SteadyQueue returns the queue length at which the mapped rate equals the
// given draining rate — the stable point B_s the queue converges to under
// sustained congestion (e.g. 75 KB in the Figure 5 example, where the drain
// rate is C/2, B0=50KB, Bm=100KB).
func (m ContinuousMapping) SteadyQueue(drain units.Rate) units.Size {
	if drain >= m.C {
		return m.B0
	}
	if drain <= 0 {
		return m.Bm
	}
	return m.Bm - units.Size(float64(m.Bm-m.B0)*float64(drain)/float64(m.C))
}

// minStageLen is the stage length below which further stages are omitted:
// buffers are consumed in 8-bit units (§4.2), so stages shorter than one
// byte are meaningless.
const minStageLen = 1 * units.Byte

// StageTable is the multi-stage step mapping function of practical
// buffer-based GFC (Figure 6). Stage 0 covers queue lengths below B_1 at
// line rate; stage k (1 ≤ k ≤ N) starts at threshold B_k and maps to rate
// R_k = C/2^k. The rate never reaches zero, which is what eliminates
// hold-and-wait.
type StageTable struct {
	C          units.Rate
	Bm         units.Size
	thresholds []units.Size // thresholds[k-1] = B_k, ascending
	rates      []units.Rate // rates[k-1] = R_k = C / 2^k
}

// NewStageTable builds the stage table for capacity c, buffer ceiling bm and
// first threshold b1, with the paper's rate ratio R_k = R_{k−1}/2. It fails
// when the parameters are inconsistent; use BufferBasedB1Bound to pick a
// safe b1 for a given τ (the table itself does not know τ — safety is the
// caller's contract, and NewSafeStageTable enforces it).
func NewStageTable(c units.Rate, bm, b1 units.Size) (*StageTable, error) {
	return NewStageTableRatio(c, bm, b1, 0.5)
}

// NewStageTableRatio generalises the stage construction to an arbitrary
// per-stage rate ratio r ∈ (0, 3/4]: R_k = r·R_{k−1} and, per equation (2),
// B_k = B_m − (B_m − B_1)·r^(k−1). Equation (3) derives r ≤ 3/4 from
// Theorem 4.1; the paper selects r = 1/2 (equation 4). The corresponding
// stage-safety requirement (equation 1) becomes B_1 ≤ B_m − Cτ/(1−r).
func NewStageTableRatio(c units.Rate, bm, b1 units.Size, ratio float64) (*StageTable, error) {
	if c <= 0 {
		return nil, fmt.Errorf("core: capacity %v must be positive", c)
	}
	if b1 <= 0 || b1 >= bm {
		return nil, fmt.Errorf("core: need 0 < B1 (%v) < Bm (%v)", b1, bm)
	}
	// The negated form rejects NaN (every comparison with NaN is false,
	// so `ratio <= 0` would wave it through).
	if !(ratio > 0 && ratio <= 0.75) {
		return nil, fmt.Errorf("core: stage ratio %v outside (0, 3/4] (equation 3)", ratio)
	}
	if float64(c)*ratio < 1 {
		return nil, fmt.Errorf("core: capacity %v too small for a staged mapping (first stage rate would round below 1 b/s)", c)
	}
	t := &StageTable{C: c, Bm: bm}
	span := float64(bm - b1)
	scale := 1.0 // r^(k−1)
	rate := float64(c)
	for k := 1; ; k++ {
		thr := bm - units.Size(span*scale)
		rate *= ratio
		t.thresholds = append(t.thresholds, thr)
		t.rates = append(t.rates, units.Rate(rate))
		// Stop once the next stage would be shorter than a byte — or its
		// rate would round to zero, which would turn the gentle floor
		// into a full stop (the very failure mode GFC exists to avoid).
		next := bm - units.Size(span*scale*ratio)
		if next-thr < minStageLen || k >= 100 || rate*ratio < 1 {
			break
		}
		scale *= ratio
	}
	return t, nil
}

// NewSafeStageTable builds a stage table whose B_1 honours the Theorem 4.1
// derived bound B_1 ≤ B_m − 2Cτ, returning an error otherwise.
func NewSafeStageTable(c units.Rate, bm, b1 units.Size, tau units.Time) (*StageTable, error) {
	if bound := BufferBasedB1Bound(bm, c, tau); b1 > bound {
		return nil, fmt.Errorf("core: B1 %v exceeds safe bound %v (Bm−2Cτ, τ=%v)", b1, bound, tau)
	}
	return NewStageTable(c, bm, b1)
}

// Stages reports the number of rate-limited stages N.
func (t *StageTable) Stages() int { return len(t.thresholds) }

// Threshold returns B_k for 1 ≤ k ≤ N.
func (t *StageTable) Threshold(k int) units.Size { return t.thresholds[k-1] }

// StageRate returns R_k for stage k; stage 0 is line rate.
func (t *StageTable) StageRate(k int) units.Rate {
	if k <= 0 {
		return t.C
	}
	if k > len(t.rates) {
		k = len(t.rates)
	}
	return t.rates[k-1]
}

// StageFor maps an instantaneous queue length to its stage index: 0 when
// q < B_1, else the largest k with B_k ≤ q.
func (t *StageTable) StageFor(q units.Size) int {
	// Linear scan is fine: N ≤ 20 for any practical link speed, and the
	// common case (uncongested, q < B_1) exits immediately.
	stage := 0
	for k, thr := range t.thresholds {
		if q < thr {
			break
		}
		stage = k + 1
	}
	return stage
}

// RateFor maps a queue length directly to the sending rate.
func (t *StageTable) RateFor(q units.Size) units.Rate {
	return t.StageRate(t.StageFor(q))
}

// MinBuffer reports the minimum buffer the table requires, B_m − B_1 ≥ 2Cτ
// worth of headroom above B_1 plus B_1 itself — i.e. simply B_m. Provided
// for symmetry with PFC headroom sizing in experiment setups.
func (t *StageTable) MinBuffer() units.Size { return t.Bm }

// OverheadModel quantifies the feedback bandwidth GFC consumes (§4.2).
type OverheadModel struct {
	MessageSize units.Size // feedback frame size m (64 B on Ethernet)
	Tau         units.Time // feedback latency τ
}

// WorstCase returns the transient worst-case feedback bandwidth m/τ — one
// message per τ, e.g. 69 Mb/s (0.69% of 10GbE) at m=64B, τ=7.4µs.
func (o OverheadModel) WorstCase() units.Rate {
	return units.RateOf(o.MessageSize, o.Tau)
}

// Steady returns the steady-state worst-case feedback bandwidth m/(8τ),
// e.g. 8.6 Mb/s (0.086%) at 10GbE.
func (o OverheadModel) Steady() units.Rate {
	return units.RateOf(o.MessageSize, 8*o.Tau)
}

// Fraction reports r as a fraction of capacity c.
func Fraction(r, c units.Rate) float64 { return float64(r) / float64(c) }
