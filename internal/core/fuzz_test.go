package core_test

// Fuzz harness for the stage-table construction: any parameter set the
// constructor accepts must produce a table that passes the full structural
// validation (positive, non-increasing rates; strictly ascending thresholds
// below B_m; StageFor exact at every boundary) and a monotone queue→stage
// mapping. The external test package lets the harness reuse
// metrics.ValidateStageTable — the same validator runs attach to live
// simulations — without an import cycle.

import (
	"testing"

	"github.com/gfcsim/gfc/internal/core"
	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/units"
)

func FuzzStageTable(f *testing.F) {
	// The parameterisations the repo actually runs, plus boundary probes.
	f.Add(int64(10_000_000_000), int64(994_000), int64(750_000), 0.5, int64(800_000))  // testbed
	f.Add(int64(10_000_000_000), int64(294_000), int64(275_000), 0.5, int64(100_000))  // §6.2.2 sim
	f.Add(int64(10_000_000_000), int64(294_000), int64(153_000), 0.75, int64(294_000)) // max ratio
	f.Add(int64(8_000), int64(1_000_000), int64(1), 0.5, int64(0))                     // tiny capacity
	f.Add(int64(1), int64(2), int64(1), 0.5, int64(3))                                 // degenerate
	f.Add(int64(400_000_000_000), int64(9_000_000_000), int64(10_000), 0.1, int64(42)) // deep table

	f.Fuzz(func(t *testing.T, c, bm, b1 int64, ratio float64, q int64) {
		table, err := core.NewStageTableRatio(units.Rate(c), units.Size(bm), units.Size(b1), ratio)
		if err != nil {
			t.Skip() // rejected parameters are fine; accepted ones must be sound
		}
		if err := metrics.ValidateStageTable(table); err != nil {
			t.Fatalf("accepted table fails validation: %v\n(c=%d bm=%d b1=%d ratio=%v)",
				err, c, bm, b1, ratio)
		}

		// The queue→stage mapping must be monotone and anchored: an empty
		// queue is stage 0 at line rate, and deeper queues never map to a
		// shallower stage or a faster rate.
		if s := table.StageFor(0); s != 0 {
			t.Fatalf("StageFor(0) = %d", s)
		}
		if r := table.RateFor(0); r != units.Rate(c) {
			t.Fatalf("RateFor(0) = %v, want line rate %v", r, units.Rate(c))
		}
		probes := []units.Size{0, units.Size(b1) - 1, units.Size(b1), units.Size(bm), 2 * units.Size(bm)}
		for k := 1; k <= table.Stages(); k++ {
			thr := table.Threshold(k)
			probes = append(probes, thr-1, thr, thr+1)
		}
		if q >= 0 {
			probes = append(probes, units.Size(q)%(2*units.Size(bm)))
		}
		// Monotonicity over every ordered probe pair.
		for _, a := range probes {
			for _, b := range probes {
				if a > b {
					continue
				}
				sa, sb := table.StageFor(a), table.StageFor(b)
				if sa > sb {
					t.Fatalf("StageFor not monotone: StageFor(%v)=%d > StageFor(%v)=%d", a, sa, b, sb)
				}
				if ra, rb := table.RateFor(a), table.RateFor(b); ra < rb {
					t.Fatalf("RateFor not antitone: RateFor(%v)=%v < RateFor(%v)=%v", a, ra, b, rb)
				}
			}
		}
		// The gentle guarantee: even past B_m the rate floor stays
		// positive — GFC slows, it never stops.
		if r := table.RateFor(2 * units.Size(bm)); r <= 0 {
			t.Fatalf("deepest rate %v not positive: the mapping stops instead of slowing", r)
		}
	})
}
