package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gfcsim/gfc/internal/units"
)

// These tests check the paper's two theorems empirically on a fluid model
// of a single controlled queue: the input rate follows the mapping function
// with feedback delay τ (Theorem 4.1) or with periodic feedback T plus
// delay τ (Theorem 5.1), while the draining rate varies arbitrarily —
// including dropping to zero, the adversarial case of the proofs. The
// theorems assert q_max < B_m, i.e. the input rate never has to stop:
// hold-and-wait is eliminated.

// drainPattern is a piecewise-constant drain rate: segment i lasts segDur
// and drains at rates[i].
type drainPattern struct {
	rates  []units.Rate
	segDur units.Time
}

func (d drainPattern) at(t units.Time) units.Rate {
	i := int(t / d.segDur)
	if i >= len(d.rates) {
		i = len(d.rates) - 1
	}
	return d.rates[i]
}

// simulateConceptual runs the conceptual-GFC fluid model: the receiver
// continuously reports q(t); the sender's rate at time t is mapping(q(t−τ)).
// Returns the maximum queue length observed.
func simulateConceptual(m ContinuousMapping, tau units.Time, drain drainPattern, horizon units.Time) units.Size {
	const dt = 100 * units.Nanosecond
	steps := int(horizon / dt)
	hist := make([]float64, steps+1) // q at each step, for delayed lookup
	lag := int(tau / dt)
	var q, qmax float64
	for i := 0; i < steps; i++ {
		hist[i] = q
		// The sender reacts to the queue as it was τ ago; before any
		// feedback it sends at line rate.
		var ri units.Rate
		if i <= lag {
			ri = m.C
		} else {
			ri = m.Rate(units.Size(hist[i-lag]))
		}
		rd := drain.at(units.Time(i) * dt)
		q += (float64(ri) - float64(rd)) / 8 * dt.Seconds()
		if q < 0 {
			q = 0
		}
		if q > qmax {
			qmax = q
		}
	}
	return units.Size(qmax)
}

// simulateTimeBased runs the time-based fluid model: the receiver reports
// q every T; the report takes τ to take effect; between updates the rate
// holds.
func simulateTimeBased(m ContinuousMapping, tau, period units.Time, drain drainPattern, horizon units.Time) units.Size {
	const dt = 100 * units.Nanosecond
	steps := int(horizon / dt)
	var q, qmax float64
	rate := m.C
	// With τ > T several feedback messages are in flight concurrently;
	// keep them all, in order.
	type update struct {
		at units.Time
		r  units.Rate
	}
	var pending []update
	nextReport := period
	for i := 0; i < steps; i++ {
		now := units.Time(i) * dt
		// Apply due updates before taking a new report: with τ = T
		// the two coincide and the older rate must land first.
		for len(pending) > 0 && now >= pending[0].at {
			rate = pending[0].r
			pending = pending[1:]
		}
		if now >= nextReport {
			pending = append(pending, update{at: now + tau, r: m.Rate(units.Size(q))})
			nextReport += period
		}
		rd := drain.at(now)
		q += (float64(rate) - float64(rd)) / 8 * dt.Seconds()
		if q < 0 {
			q = 0
		}
		if q > qmax {
			qmax = q
		}
	}
	return units.Size(qmax)
}

func randomDrain(rng *rand.Rand, c units.Rate) drainPattern {
	n := 3 + rng.Intn(5)
	rates := make([]units.Rate, n)
	for i := range rates {
		switch rng.Intn(3) {
		case 0:
			rates[i] = 0 // fully stalled — the adversarial case
		case 1:
			rates[i] = units.Rate(rng.Float64()) * c / 2
		default:
			rates[i] = units.Rate(rng.Float64()) * c
		}
	}
	return drainPattern{rates: rates, segDur: 200 * units.Microsecond}
}

// TestTheorem41Empirical: with B0 at the Theorem 4.1 bound (B_m − 4Cτ),
// the queue never reaches B_m under any drain pattern.
func TestTheorem41Empirical(t *testing.T) {
	if testing.Short() {
		t.Skip("fluid sweeps are slow")
	}
	c := 10 * units.Gbps
	f := func(seed int64, tauUS uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tau := units.Time(1+int(tauUS)%20) * units.Microsecond
		bm := 300 * units.KB
		b0 := ConceptualB0Bound(bm, c, tau)
		if b0 <= 0 {
			return true // configuration out of range
		}
		m := ContinuousMapping{C: c, B0: b0, Bm: bm}
		qmax := simulateConceptual(m, tau, randomDrain(rng, c), 3*units.Millisecond)
		// At the exact bound the dynamics asymptote to B_m (the
		// Theorem 4.1 inequality is tight: l = 4 is the double root),
		// so allow a discretisation-scale tolerance.
		return qmax <= bm+units.KB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestTheorem41BoundIsMeaningful: with B0 far beyond the bound the queue
// does overflow B_m under a stalled drain — i.e. the theorem's constraint
// is doing real work, not vacuously true.
func TestTheorem41BoundIsMeaningful(t *testing.T) {
	c := 10 * units.Gbps
	tau := 20 * units.Microsecond
	bm := 300 * units.KB
	// B0 within one Cτ of Bm: far too aggressive.
	m := ContinuousMapping{C: c, B0: bm - units.BytesIn(c, tau)/2, Bm: bm}
	stall := drainPattern{rates: []units.Rate{0}, segDur: units.Second}
	qmax := simulateConceptual(m, tau, stall, 3*units.Millisecond)
	if qmax < bm {
		t.Fatalf("aggressive B0 stayed below Bm (qmax=%v); fluid model too forgiving", qmax)
	}
}

// TestTheorem51Empirical: with B0 at the Theorem 5.1 bound
// (B_m − (√(τ/T)+1)²CT), the periodically-fed-back queue never reaches B_m.
func TestTheorem51Empirical(t *testing.T) {
	if testing.Short() {
		t.Skip("fluid sweeps are slow")
	}
	c := 10 * units.Gbps
	f := func(seed int64, tauUS, perUS uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tau := units.Time(1+int(tauUS)%15) * units.Microsecond
		period := units.Time(5+int(perUS)%60) * units.Microsecond
		bm := 600 * units.KB
		b0 := TimeBasedB0Bound(bm, c, tau, period)
		if b0 <= 0 {
			return true
		}
		m := ContinuousMapping{C: c, B0: b0, Bm: bm}
		qmax := simulateTimeBased(m, tau, period, randomDrain(rng, c), 3*units.Millisecond)
		// Tight bound + discretisation: see TestTheorem41Empirical.
		return qmax <= bm+units.KB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestTheorem51BoundIsMeaningful mirrors the 4.1 check for the time-based
// bound.
func TestTheorem51BoundIsMeaningful(t *testing.T) {
	c := 10 * units.Gbps
	tau := 10 * units.Microsecond
	period := 50 * units.Microsecond
	bm := 600 * units.KB
	m := ContinuousMapping{C: c, B0: bm - units.BytesIn(c, period)/2, Bm: bm}
	stall := drainPattern{rates: []units.Rate{0}, segDur: units.Second}
	qmax := simulateTimeBased(m, tau, period, stall, 3*units.Millisecond)
	if qmax < bm {
		t.Fatalf("aggressive B0 stayed below Bm (qmax=%v)", qmax)
	}
}

// TestStageTableEmpiricalSafety: the practical multi-stage mapping with the
// §5.4 parameters also keeps the queue below B_m in the fluid model with a
// stalled drain: rate halvings outpace the queue growth.
func TestStageTableEmpiricalSafety(t *testing.T) {
	c := 10 * units.Gbps
	tau := 7400 * units.Nanosecond
	bm := 300 * units.KB
	b1 := BufferBasedB1Bound(bm, c, tau)
	st, err := NewSafeStageTable(c, bm, b1, tau)
	if err != nil {
		t.Fatal(err)
	}
	const dt = 100 * units.Nanosecond
	steps := int((3 * units.Millisecond) / dt)
	hist := make([]float64, steps+1)
	lag := int(tau / dt)
	var q, qmax float64
	for i := 0; i < steps; i++ {
		hist[i] = q
		var ri units.Rate
		if i <= lag {
			ri = c
		} else {
			ri = st.RateFor(units.Size(hist[i-lag]))
		}
		q += float64(ri) / 8 * dt.Seconds() // drain fully stalled
		if q > qmax {
			qmax = q
		}
	}
	// The step mapping's deepest stage keeps a positive rate, so a
	// permanently stalled drain eventually creeps past B_m — but only at
	// the floor rate. Within the horizon the overshoot must stay within
	// a few MTU of B_m (the headroom the practical configuration keeps).
	if units.Size(qmax) > bm+6*1500 {
		t.Fatalf("stage-table overshoot %v far beyond Bm=%v", units.Size(qmax), bm)
	}
}
