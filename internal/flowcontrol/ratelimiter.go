package flowcontrol

import (
	"math"

	"github.com/gfcsim/gfc/internal/units"
)

// RateLimiter models the per-queue egress rate limiter of §5.3. Hardware
// keeps three registers: R_l records the transmission time of the last
// packet, R_r the assigned queue rate, and R_c a countdown started when a
// packet finishes; the queue may transmit again once R_c reaches zero, where
//
//	R_c = (C − R_r) / R_r · R_l
//
// so the long-run rate is exactly R_r. The Go model recomputes the countdown
// from the current R_r on every query, which mirrors firmware resetting R_c
// when the assigned rate changes — without it, a rate step from C/2^16 back
// up to C would still serve out a countdown tens of milliseconds long.
//
// MinRate reflects the hardware granularity floor discussed in §7 (8 Kb/s on
// commodity switches): assigned rates below it are clamped up, which keeps
// the limiter from ever parking a queue forever.
type RateLimiter struct {
	Capacity units.Rate
	MinRate  units.Rate
	// Slack is the limiter's conservatism: the countdown is stretched by
	// (1+Slack), so the achieved rate sits slightly below the assigned
	// R_r (except at line rate, which is unpaced). Hardware limiters
	// have exactly this property — the R_c register counts in whole
	// clock ticks and configurations round toward "not more than R_r".
	//
	// The slack matters behaviourally: inside one stage of the GFC step
	// mapping, arrival at R_r against a drain of R_r is neutrally
	// stable, and packet-level beats only ever pump bytes in, slowly
	// ratcheting coupled CBD queues toward the buffer ceiling. A
	// slightly conservative limiter makes drain exceed arrival so
	// queues restore to the stage boundary instead. Default 1%.
	Slack float64

	rate    units.Rate
	lastEnd units.Time // when the previous packet finished serialising
	lastDur units.Time // R_l: how long it occupied the wire
}

// DefaultSlack is the default limiter conservatism.
const DefaultSlack = 0.01

// DefaultMinRate is the 8 Kb/s minimum rate unit of commodity rate limiters.
const DefaultMinRate = 8 * units.Kbps

// NewRateLimiter returns a limiter initially assigned full line rate.
func NewRateLimiter(capacity units.Rate) *RateLimiter {
	return &RateLimiter{
		Capacity: capacity,
		MinRate:  DefaultMinRate,
		Slack:    DefaultSlack,
		rate:     capacity,
	}
}

// SetRate assigns R_r. Rates above capacity clamp to capacity; rates at or
// below zero clamp to MinRate (the granularity floor — GFC never assigns
// zero, but defensive clamping keeps the invariant obvious).
func (rl *RateLimiter) SetRate(r units.Rate) {
	switch {
	case r > rl.Capacity:
		r = rl.Capacity
	case r < rl.MinRate:
		r = rl.MinRate
	}
	rl.rate = r
}

// Rate reports the assigned rate R_r.
func (rl *RateLimiter) Rate() units.Rate { return rl.rate }

// NextAllowed reports the earliest time the next packet may start, given the
// current assigned rate. Before any transmission it is time zero.
func (rl *RateLimiter) NextAllowed() units.Time {
	if rl.lastDur == 0 {
		return 0
	}
	if rl.rate >= rl.Capacity {
		return rl.lastEnd
	}
	extra := float64(rl.lastDur) * float64(rl.Capacity-rl.rate) / float64(rl.rate) * (1 + rl.Slack)
	if extra >= float64(math.MaxInt64)-float64(rl.lastEnd) {
		return units.Never
	}
	return rl.lastEnd + units.Time(extra)
}

// OnSent records that a packet finished serialising at end after occupying
// the wire for dur, starting the R_c countdown.
func (rl *RateLimiter) OnSent(end units.Time, dur units.Time) {
	rl.lastEnd = end
	rl.lastDur = dur
}
