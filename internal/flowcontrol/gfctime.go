package flowcontrol

import (
	"fmt"

	"github.com/gfcsim/gfc/internal/core"
	"github.com/gfcsim/gfc/internal/units"
)

// GFCTimeConfig configures time-based GFC (§5.2). The Message Generator is
// CBFC's, completely unmodified: a periodic credit advertisement every T.
// Only the Rate Adjuster changes — instead of gating on credit exhaustion it
// derives the remaining downstream buffer from FCCL − FCTBS and maps it
// through the continuous function, with the Theorem 5.1 threshold
// B0 ≤ Bm − (√(τ/T)+1)²·CT.
type GFCTimeConfig struct {
	// Period is the feedback interval T; zero means the InfiniBand
	// recommendation for the link capacity.
	Period units.Time
	// B0 is the activation threshold; zero derives the Theorem 5.1 safe
	// maximum.
	B0 units.Size
	// Bm is the mapping ceiling; zero defaults to the buffer size minus
	// four MTUs of headroom, which absorbs the MinRate floor's residual
	// trickle when a downstream drain stops completely.
	Bm units.Size
	// MinRate floors the mapped rate; zero means 8 Kb/s.
	MinRate units.Rate
	// Slack is the rate-limiter conservatism; zero means the limiter
	// default.
	Slack float64
}

// NewGFCTime returns a Factory for time-based GFC.
//
// Faithful to §5.2, the Rate Adjuster fully replaces CBFC's credit gate:
// FCCL/FCTBS are tracked only to derive the remaining downstream buffer, and
// transmission is gated purely by the rate limiter. The rate therefore never
// reaches zero — the hold-and-wait elimination — at the cost of a small
// headroom requirement above Bm (see GFCTimeConfig.Bm).
func NewGFCTime(cfg GFCTimeConfig) Factory {
	return func(p Params, env Env) (Controller, error) {
		if err := p.Validate(); err != nil {
			return Controller{}, err
		}
		period := cfg.Period
		if period == 0 {
			period = RecommendedCBFCPeriod(p.Capacity)
		}
		bm := cfg.Bm
		if bm == 0 {
			bm = p.Buffer - 4*p.MTU
		}
		b0 := cfg.B0
		if b0 == 0 {
			b0 = core.TimeBasedB0Bound(bm, p.Capacity, p.Tau, period)
		}
		if b0 <= 0 || b0 >= bm {
			return Controller{}, fmt.Errorf("flowcontrol: time-based GFC needs 0 < B0 (%v) < Bm (%v); buffer too small for τ=%v, T=%v",
				b0, bm, p.Tau, period)
		}
		m := core.ContinuousMapping{C: p.Capacity, B0: b0, Bm: bm}
		rl := NewRateLimiter(p.Capacity)
		if cfg.MinRate > 0 {
			rl.MinRate = cfg.MinRate
		}
		if cfg.Slack > 0 {
			rl.Slack = cfg.Slack
		}
		return Controller{
			Sender:   &gfcTimeSender{p: p, mapping: m, bm: bm, rl: rl, env: env},
			Receiver: &cbfcReceiver{p: p, cfg: CBFCConfig{Period: period}, env: env},
		}, nil
	}
}

type gfcTimeSender struct {
	p       Params
	mapping core.ContinuousMapping
	bm      units.Size
	rl      *RateLimiter
	env     Env

	fctbs int64
	fccl  int64
	init  bool
}

func (s *gfcTimeSender) TrySend(sz units.Size) (bool, units.Time) {
	if !s.init {
		return false, units.Never
	}
	next := s.rl.NextAllowed()
	if now := s.env.Now(); next > now {
		return false, next
	}
	return true, 0
}

func (s *gfcTimeSender) OnSent(sz units.Size, dur units.Time) {
	s.fctbs += Blocks(sz)
	s.rl.OnSent(s.env.Now(), dur)
}

func (s *gfcTimeSender) OnFeedback(m Message) {
	if m.Kind != KindCredit {
		return
	}
	s.init = true
	if m.FCCL > s.fccl {
		s.fccl = m.FCCL
	}
	// Remaining downstream buffer in bytes; occupancy proxy q = Bm − rem.
	rem := units.Size(s.fccl-s.fctbs) * CreditBlock
	if rem < 0 {
		rem = 0
	}
	q := s.bm - rem
	if q < 0 {
		q = 0
	}
	s.rl.SetRate(s.mapping.Rate(q))
}

func (s *gfcTimeSender) Rate() units.Rate {
	if !s.init {
		return 0
	}
	return s.rl.Rate()
}

// Ceiling returns the mapping ceiling B_m (Bounded).
func (s *gfcTimeSender) Ceiling() units.Size { return s.bm }
