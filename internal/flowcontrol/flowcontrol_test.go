package flowcontrol

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/gfcsim/gfc/internal/eventsim"
	"github.com/gfcsim/gfc/internal/units"
)

// fakeEnv runs controllers against a real event engine and records emitted
// messages, optionally forwarding them to a paired sender after a delay.
type fakeEnv struct {
	eng     *eventsim.Engine
	sent    []Message
	forward Sender
	delay   units.Time
}

func newFakeEnv() *fakeEnv { return &fakeEnv{eng: eventsim.New()} }

func (e *fakeEnv) Now() units.Time               { return e.eng.Now() }
func (e *fakeEnv) After(d units.Time, fn func()) { e.eng.After(d, fn) }
func (e *fakeEnv) Emit(m Message)                { e.sent = append(e.sent, m); e.deliver(m) }
func (e *fakeEnv) deliver(m Message) {
	if e.forward == nil {
		return
	}
	e.eng.After(e.delay, func() { e.forward.OnFeedback(m) })
}

func testParams() Params {
	return Params{
		Capacity: 10 * units.Gbps,
		Buffer:   1000 * units.KB,
		MTU:      1500 * units.Byte,
		Tau:      10 * units.Microsecond,
	}
}

func TestParamsValidate(t *testing.T) {
	good := testParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Capacity: 0, Buffer: 1, MTU: 1},
		{Capacity: 1, Buffer: 0, MTU: 1},
		{Capacity: 1, Buffer: 1, MTU: 0},
		{Capacity: 1, Buffer: 1, MTU: 1, Tau: -1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindPause: "PAUSE", KindResume: "RESUME", KindStage: "STAGE",
		KindCredit: "CREDIT", KindQueue: "QUEUE", KindQueuePause: "QPAUSE",
		KindQueueResume: "QRESUME", Kind(99): "kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

// --- PFC ---

func TestRecommendedPFC(t *testing.T) {
	p := testParams()
	cfg, err := RecommendedPFC(p)
	if err != nil {
		t.Fatal(err)
	}
	// headroom = Cτ = 12500B; XOFF = 987.5KB; XON = XOFF − 3KB.
	if cfg.XOFF != p.Buffer-12500 {
		t.Errorf("XOFF = %v", cfg.XOFF)
	}
	if cfg.XON != cfg.XOFF-3000 {
		t.Errorf("XON = %v", cfg.XON)
	}
	if err := cfg.Validate(p); err != nil {
		t.Error(err)
	}
}

// RecommendedPFC must reject buffers that cannot host the Cτ headroom plus
// a positive XON: at or below Cτ + 2·MTU the derived thresholds would be
// non-positive. The boundary cases are Buffer = Cτ, Cτ + MTU, Cτ + 2·MTU
// (all invalid) and the first valid size just above.
func TestRecommendedPFCSmallBuffer(t *testing.T) {
	p := testParams()
	headroom := units.BytesIn(p.Capacity, p.Tau) // Cτ = 12500B
	for _, buf := range []units.Size{
		headroom,           // XOFF = 0
		headroom + p.MTU,   // XON < 0
		headroom + 2*p.MTU, // XON = 0
	} {
		p.Buffer = buf
		if cfg, err := RecommendedPFC(p); err == nil {
			t.Errorf("buffer %v accepted: %+v", buf, cfg)
		}
	}
	p.Buffer = headroom + 2*p.MTU + 1
	cfg, err := RecommendedPFC(p)
	if err != nil {
		t.Fatalf("minimal viable buffer rejected: %v", err)
	}
	if cfg.XON != 1 || cfg.XOFF != 2*p.MTU+1 {
		t.Errorf("thresholds at minimal buffer: %+v", cfg)
	}
}

// quantaDuration rounds half-up to the nanosecond clock: one quantum is
// 51.2 ns at 10 Gb/s, 5.12 ns at 100 Gb/s and 1.28 ns at 400 Gb/s, so the
// multi-quanta values below would drift under truncation.
func TestQuantaDurationRounding(t *testing.T) {
	cases := []struct {
		q    int
		c    units.Rate
		want units.Time
	}{
		{1, 10 * units.Gbps, 51},     // 51.2
		{100, 10 * units.Gbps, 5120}, // exact
		{1, 100 * units.Gbps, 5},     // 5.12
		{3, 100 * units.Gbps, 15},    // 15.36
		{1, 400 * units.Gbps, 1},     // 1.28
		{3, 400 * units.Gbps, 4},     // 3.84 → rounds up (trunc would give 3)
		{100, 400 * units.Gbps, 128}, // exact
	}
	for _, c := range cases {
		if got := quantaDuration(c.q, c.c); got != c.want {
			t.Errorf("quantaDuration(%d, %v) = %v, want %v", c.q, c.c, got, c.want)
		}
	}
}

func TestPFCConfigValidate(t *testing.T) {
	p := testParams()
	bad := []PFCConfig{
		{XOFF: 0, XON: 0},
		{XOFF: p.Buffer + 1, XON: 1},
		{XOFF: 500 * units.KB, XON: 600 * units.KB},
		{XOFF: p.Buffer, XON: p.Buffer - 1}, // no headroom
	}
	for i, cfg := range bad {
		if cfg.Validate(p) == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestPFCPauseResume(t *testing.T) {
	env := newFakeEnv()
	p := testParams()
	cfg := PFCConfig{XOFF: 800 * units.KB, XON: 797 * units.KB}
	c, err := NewPFC(cfg)(p, env)
	if err != nil {
		t.Fatal(err)
	}
	env.forward = c.Sender
	c.Receiver.Start()

	if ok, _ := c.Sender.TrySend(1500); !ok {
		t.Fatal("PFC sender initially blocked")
	}
	if got := c.Sender.Rate(); got != p.Capacity {
		t.Fatalf("initial rate %v", got)
	}

	// Fill past XOFF.
	c.Receiver.OnArrival(1500, 800*units.KB)
	env.eng.RunAll()
	if len(env.sent) != 1 || env.sent[0].Kind != KindPause {
		t.Fatalf("messages = %+v, want one PAUSE", env.sent)
	}
	if ok, wake := c.Sender.TrySend(1500); ok || wake != units.Never {
		t.Fatal("sender not paused after PAUSE")
	}
	if c.Sender.Rate() != 0 {
		t.Fatal("paused rate not zero")
	}

	// Stay above XON: no RESUME, no duplicate PAUSE.
	c.Receiver.OnArrival(1500, 900*units.KB)
	c.Receiver.OnDeparture(1500, 799*units.KB)
	env.eng.RunAll()
	if len(env.sent) != 1 {
		t.Fatalf("spurious messages: %+v", env.sent)
	}

	// Drop to XON: RESUME.
	c.Receiver.OnDeparture(1500, 797*units.KB)
	env.eng.RunAll()
	if len(env.sent) != 2 || env.sent[1].Kind != KindResume {
		t.Fatalf("messages = %+v, want PAUSE,RESUME", env.sent)
	}
	if ok, _ := c.Sender.TrySend(1500); !ok {
		t.Fatal("sender still paused after RESUME")
	}
}

func TestPFCRejectsBadParams(t *testing.T) {
	env := newFakeEnv()
	if _, err := NewPFC(PFCConfig{XOFF: 1, XON: 1})(Params{}, env); err == nil {
		t.Fatal("invalid Params accepted")
	}
	p := testParams()
	if _, err := NewPFC(PFCConfig{XOFF: p.Buffer, XON: 1})(p, env); err == nil {
		t.Fatal("headroom-free config accepted")
	}
}

// --- CBFC ---

func TestBlocks(t *testing.T) {
	cases := []struct {
		s    units.Size
		want int64
	}{
		// A zero-size (header-only) packet must still consume a block, or
		// credit accounting lets it bypass flow control entirely.
		{0, 1},
		{1, 1}, {64, 1}, {65, 2}, {1500, 24},
	}
	for _, c := range cases {
		if got := Blocks(c.s); got != c.want {
			t.Errorf("Blocks(%d) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestRecommendedCBFCPeriod(t *testing.T) {
	// 65535B at 10G ≈ 52.4µs, the paper's testbed period.
	got := RecommendedCBFCPeriod(10 * units.Gbps)
	if got < 52*units.Microsecond || got > 53*units.Microsecond {
		t.Errorf("period = %v, want ≈52.4µs", got)
	}
}

func TestCBFCCreditLifecycle(t *testing.T) {
	env := newFakeEnv()
	p := testParams()
	p.Buffer = 64 * 10 * units.Byte // 10 blocks
	c, err := NewCBFC(CBFCConfig{Period: 10 * units.Microsecond})(p, env)
	if err != nil {
		t.Fatal(err)
	}
	env.forward = c.Sender

	// Before init no sending.
	if ok, _ := c.Sender.TrySend(64); ok {
		t.Fatal("sent before credit init")
	}
	c.Receiver.Start()
	env.eng.Run(0) // deliver initial advertisement
	if ok, _ := c.Sender.TrySend(64 * 10); !ok {
		t.Fatal("cannot send full allocation")
	}
	if ok, _ := c.Sender.TrySend(64*10 + 1); ok {
		t.Fatal("over-allocation allowed")
	}
	// Consume all credits.
	c.Sender.OnSent(64*10, 0)
	if ok, _ := c.Sender.TrySend(64); ok {
		t.Fatal("send allowed with zero credits")
	}
	if c.Sender.Rate() != 0 {
		t.Fatal("rate not zero with exhausted credits")
	}
	// Buffer drains 5 blocks; next periodic advert extends FCCL.
	c.Receiver.OnDeparture(64*5, 0)
	env.eng.Run(10 * units.Microsecond)
	if ok, _ := c.Sender.TrySend(64 * 5); !ok {
		t.Fatal("freed credits not granted")
	}
	if ok, _ := c.Sender.TrySend(64 * 6); ok {
		t.Fatal("more credits than freed")
	}
}

func TestCBFCStaleAdvertIgnored(t *testing.T) {
	env := newFakeEnv()
	p := testParams()
	c, err := NewCBFC(CBFCConfig{Period: 10 * units.Microsecond})(p, env)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Sender.(*cbfcSender)
	s.OnFeedback(Message{Kind: KindCredit, FCCL: 100})
	s.OnFeedback(Message{Kind: KindCredit, FCCL: 50}) // stale
	if s.fccl != 100 {
		t.Fatalf("fccl = %d, want 100", s.fccl)
	}
	s.OnFeedback(Message{Kind: KindPause}) // wrong kind ignored
	if s.fccl != 100 {
		t.Fatal("non-credit message changed fccl")
	}
}

func TestCBFCPeriodicAdverts(t *testing.T) {
	env := newFakeEnv()
	p := testParams()
	c, err := NewCBFC(CBFCConfig{Period: 10 * units.Microsecond})(p, env)
	if err != nil {
		t.Fatal(err)
	}
	c.Receiver.Start()
	env.eng.Run(95 * units.Microsecond)
	// initial + 9 periodic.
	if got := len(env.sent); got != 10 {
		t.Fatalf("adverts = %d, want 10", got)
	}
	for _, m := range env.sent {
		if m.Kind != KindCredit {
			t.Fatalf("unexpected kind %v", m.Kind)
		}
	}
}

func TestCBFCBadPeriod(t *testing.T) {
	env := newFakeEnv()
	if _, err := NewCBFC(CBFCConfig{})(testParams(), env); err == nil {
		t.Fatal("zero period accepted")
	}
}

// --- Rate limiter ---

func TestRateLimiterBasics(t *testing.T) {
	rl := NewRateLimiter(10 * units.Gbps)
	rl.Slack = 0 // exercise the exact §5.3 arithmetic
	if rl.Rate() != 10*units.Gbps {
		t.Fatal("initial rate not line rate")
	}
	if rl.NextAllowed() != 0 {
		t.Fatal("fresh limiter blocks")
	}
	// Send a 1500B packet (1.2µs) at line rate: immediately allowed again.
	rl.OnSent(1200, 1200)
	if got := rl.NextAllowed(); got != 1200 {
		t.Fatalf("NextAllowed at line rate = %v", got)
	}
	// Halve the rate: R_c = (C−R)/R · R_l = 1·1200ns.
	rl.SetRate(5 * units.Gbps)
	if got := rl.NextAllowed(); got != 2400 {
		t.Fatalf("NextAllowed at C/2 = %v, want 2400", got)
	}
	// Quarter rate: extra = 3·1200.
	rl.SetRate(2.5 * units.Gbps)
	if got := rl.NextAllowed(); got != 1200+3600 {
		t.Fatalf("NextAllowed at C/4 = %v, want 4800", got)
	}
}

func TestRateLimiterClamps(t *testing.T) {
	rl := NewRateLimiter(10 * units.Gbps)
	rl.SetRate(100 * units.Gbps)
	if rl.Rate() != 10*units.Gbps {
		t.Fatal("rate above capacity not clamped")
	}
	rl.SetRate(0)
	if rl.Rate() != DefaultMinRate {
		t.Fatalf("zero rate clamped to %v, want %v", rl.Rate(), DefaultMinRate)
	}
	rl.SetRate(-5)
	if rl.Rate() != DefaultMinRate {
		t.Fatal("negative rate not clamped")
	}
}

// Property: over many packets, the achieved rate matches R_r within one
// packet of slack.
func TestRateLimiterLongRunRate(t *testing.T) {
	f := func(div uint8) bool {
		k := int(div%10) + 1
		c := 10 * units.Gbps
		target := c / units.Rate(int(1)<<k)
		rl := NewRateLimiter(c)
		rl.SetRate(target)
		var now units.Time
		const pkt = 1500 * units.Byte
		dur := units.TransmissionTime(pkt, c)
		var sent units.Size
		for i := 0; i < 300; i++ {
			na := rl.NextAllowed()
			if na > now {
				now = na
			}
			now += dur
			rl.OnSent(now, dur)
			sent += pkt
		}
		achieved := units.RateOf(sent, now)
		ratio := float64(achieved) / float64(target)
		return ratio > 0.99 && ratio < 1.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// --- Buffer-based GFC ---

func newBufferGFC(t *testing.T, env *fakeEnv) Controller {
	t.Helper()
	p := testParams()
	c, err := NewGFCBuffer(GFCBufferConfig{B1: 750 * units.KB})(p, env)
	if err != nil {
		t.Fatal(err)
	}
	env.forward = c.Sender
	return c
}

func TestGFCBufferStageMessages(t *testing.T) {
	env := newFakeEnv()
	c := newBufferGFC(t, env)
	c.Receiver.Start()

	// Below B1: no messages.
	c.Receiver.OnArrival(1500, 100*units.KB)
	env.eng.RunAll()
	if len(env.sent) != 0 {
		t.Fatalf("message below B1: %+v", env.sent)
	}
	// Cross into stage 1.
	c.Receiver.OnArrival(1500, 750*units.KB)
	env.eng.RunAll()
	if len(env.sent) != 1 || env.sent[0].Stage != 1 {
		t.Fatalf("messages = %+v", env.sent)
	}
	if got := c.Sender.Rate(); got != 5*units.Gbps {
		t.Fatalf("stage-1 rate = %v, want 5Gbps", got)
	}
	// Within stage 1: silent.
	c.Receiver.OnArrival(1500, 800*units.KB)
	env.eng.RunAll()
	if len(env.sent) != 1 {
		t.Fatal("duplicate stage message")
	}
	// Stage 2 at 875KB.
	c.Receiver.OnArrival(1500, 875*units.KB)
	env.eng.RunAll()
	if len(env.sent) != 2 || env.sent[1].Stage != 2 {
		t.Fatalf("messages = %+v", env.sent)
	}
	if got := c.Sender.Rate(); got != 2.5*units.Gbps {
		t.Fatalf("stage-2 rate = %v", got)
	}
	// Drain back below B1: stage 0, line rate.
	c.Receiver.OnDeparture(1500, 100*units.KB)
	env.eng.RunAll()
	if got := env.sent[len(env.sent)-1].Stage; got != 0 {
		t.Fatalf("final stage = %d", got)
	}
	if got := c.Sender.Rate(); got != 10*units.Gbps {
		t.Fatalf("recovered rate = %v", got)
	}
}

func TestGFCBufferRateNeverZero(t *testing.T) {
	env := newFakeEnv()
	c := newBufferGFC(t, env)
	// Slam the queue to the ceiling.
	c.Receiver.OnArrival(1500, 2000*units.KB)
	env.eng.RunAll()
	if got := c.Sender.Rate(); got <= 0 {
		t.Fatalf("rate %v at full buffer; hold-and-wait not eliminated", got)
	}
	// TrySend never returns Never: always a finite wake time.
	c.Sender.OnSent(1500, 1200)
	if ok, wake := c.Sender.TrySend(1500); !ok && wake == units.Never {
		t.Fatal("buffer-based GFC blocked without wake time")
	}
}

func TestGFCBufferPacing(t *testing.T) {
	env := newFakeEnv()
	c := newBufferGFC(t, env)
	c.Receiver.OnArrival(1500, 750*units.KB) // stage 1 → C/2
	env.eng.RunAll()
	// After sending a packet, TrySend must block for one extra duration
	// (plus the limiter's slack).
	c.Sender.OnSent(1500, 1200)
	ok, wake := c.Sender.TrySend(1500)
	if ok {
		t.Fatal("send allowed immediately at C/2")
	}
	want := env.Now() + 1200
	if wake < want || wake > want+want/50 {
		t.Fatalf("wake = %v, want ≈now+1200", wake)
	}
}

func TestRateLimiterSlack(t *testing.T) {
	rl := NewRateLimiter(10 * units.Gbps)
	if rl.Slack != DefaultSlack {
		t.Fatalf("default slack = %v", rl.Slack)
	}
	rl.SetRate(5 * units.Gbps)
	rl.OnSent(1200, 1200)
	// Countdown stretched by (1+Slack): 1200·1.01 = 1212 extra.
	if got := rl.NextAllowed(); got != 1200+1212 {
		t.Fatalf("NextAllowed with slack = %v, want 2412", got)
	}
}

func TestGFCBufferUnsafeB1Rejected(t *testing.T) {
	env := newFakeEnv()
	p := testParams() // 2Cτ = 25KB → bound 975KB
	if _, err := NewGFCBuffer(GFCBufferConfig{B1: 990 * units.KB})(p, env); err == nil {
		t.Fatal("unsafe B1 accepted")
	}
}

func TestGFCBufferDefaultB1(t *testing.T) {
	env := newFakeEnv()
	p := testParams()
	c, err := NewGFCBuffer(GFCBufferConfig{})(p, env)
	if err != nil {
		t.Fatal(err)
	}
	env.forward = c.Sender
	// Default Bm = Buffer − 4·MTU = 994KB; default B1 = Bm − 2Cτ = 969KB.
	c.Receiver.OnArrival(1500, 968*units.KB)
	env.eng.RunAll()
	if len(env.sent) != 0 {
		t.Fatal("stage fired below default B1")
	}
	c.Receiver.OnArrival(1500, 969*units.KB)
	env.eng.RunAll()
	if len(env.sent) != 1 {
		t.Fatal("stage did not fire at default B1")
	}
}

// --- Conceptual GFC ---

func TestGFCConceptualMapping(t *testing.T) {
	env := newFakeEnv()
	p := Params{Capacity: 10 * units.Gbps, Buffer: 100 * units.KB,
		MTU: 1500, Tau: 25 * units.Microsecond}
	// Figure 5 parameters: B0=50KB, Bm=100KB.
	c, err := NewGFCConceptual(GFCConceptualConfig{B0: 50 * units.KB})(p, env)
	if err != nil {
		t.Fatal(err)
	}
	env.forward = c.Sender
	c.Receiver.OnArrival(1500, 75*units.KB)
	env.eng.RunAll()
	if got := c.Sender.Rate(); got != 5*units.Gbps {
		t.Fatalf("rate at 75KB = %v, want 5Gbps (Fig 5 steady state)", got)
	}
	// Every queue change emits a message (continuous assumption).
	n := len(env.sent)
	c.Receiver.OnDeparture(1500, 74*units.KB)
	env.eng.RunAll()
	if len(env.sent) != n+1 {
		t.Fatal("conceptual GFC did not emit on queue change")
	}
	// Same value twice: deduplicated.
	c.Receiver.OnArrival(0, 74*units.KB)
	if len(env.sent) != n+1 {
		t.Fatal("duplicate queue value emitted")
	}
}

func TestGFCConceptualTooSmallBuffer(t *testing.T) {
	env := newFakeEnv()
	p := Params{Capacity: 10 * units.Gbps, Buffer: 10 * units.KB,
		MTU: 1500, Tau: 25 * units.Microsecond} // 4Cτ = 125KB > buffer
	if _, err := NewGFCConceptual(GFCConceptualConfig{})(p, env); err == nil {
		t.Fatal("impossible conceptual config accepted")
	}
}

// --- Time-based GFC ---

func TestGFCTimeRateFromCredits(t *testing.T) {
	env := newFakeEnv()
	p := testParams()
	cfg := GFCTimeConfig{Period: 52400 * units.Nanosecond, B0: 492 * units.KB, Bm: 1000 * units.KB}
	c, err := NewGFCTime(cfg)(p, env)
	if err != nil {
		t.Fatal(err)
	}
	env.forward = c.Sender
	if ok, _ := c.Sender.TrySend(64); ok {
		t.Fatal("time-based GFC sent before init")
	}
	if c.Sender.Rate() != 0 {
		t.Fatal("pre-init rate not 0")
	}
	c.Receiver.Start()
	env.eng.Run(0)
	// Full buffer advertised → remaining = Bm → q proxy 0 → line rate.
	if got := c.Sender.Rate(); got != 10*units.Gbps {
		t.Fatalf("initial rate = %v", got)
	}
	// Sender consumes half the credit without the receiver freeing any:
	// remaining = Bm/2 = 500KB → q = 500KB > B0 → mapped rate
	// C·(Bm−q)/(Bm−B0) = 10G·500/508 ≈ 9.84G.
	s := c.Sender.(*gfcTimeSender)
	s.OnSent(500*units.KB, 400*units.Microsecond)
	s.OnFeedback(Message{Kind: KindCredit, FCCL: s.fccl}) // re-evaluate
	got := c.Sender.Rate()
	if got <= 9.8*units.Gbps || got >= 9.9*units.Gbps {
		t.Fatalf("rate = %v, want ≈9.84Gbps", got)
	}
}

func TestGFCTimeRateNeverZero(t *testing.T) {
	// §5.2: the Rate Adjuster replaces the credit gate entirely; even
	// with the downstream buffer fully consumed the sender keeps a
	// positive (floor) rate — hold-and-wait eliminated.
	env := newFakeEnv()
	p := testParams()
	c, err := NewGFCTime(GFCTimeConfig{B0: 492 * units.KB})(p, env)
	if err != nil {
		t.Fatal(err)
	}
	env.forward = c.Sender
	c.Receiver.Start()
	env.eng.Run(0)
	s := c.Sender.(*gfcTimeSender)
	// Consume the entire advertised credit without any drain.
	s.OnSent(p.Buffer, units.Millisecond)
	s.OnFeedback(Message{Kind: KindCredit, FCCL: s.fccl})
	if got := c.Sender.Rate(); got <= 0 {
		t.Fatalf("rate %v at exhausted credit; hold-and-wait reintroduced", got)
	}
	if ok, wake := c.Sender.TrySend(1500); !ok && wake == units.Never {
		t.Fatal("time-based GFC blocked without a finite wake")
	}
}

func TestGFCTimeDefaultsDerived(t *testing.T) {
	env := newFakeEnv()
	p := testParams()
	c, err := NewGFCTime(GFCTimeConfig{})(p, env)
	if err != nil {
		t.Fatal(err)
	}
	_ = c
	// A buffer smaller than the Theorem 5.1 headroom must be rejected.
	p.Buffer = 50 * units.KB
	if _, err := NewGFCTime(GFCTimeConfig{})(p, env); err == nil {
		t.Fatal("undersized buffer accepted")
	}
}

// --- BFC ---

func TestRecommendedBFC(t *testing.T) {
	p := testParams()
	cfg, err := RecommendedBFC(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	// (1000KB − 12.5KB) / 8 = 123437B per queue; XON one MTU below.
	if cfg.XOFF != (p.Buffer-12500)/8 {
		t.Errorf("XOFF = %v", cfg.XOFF)
	}
	if cfg.XON != cfg.XOFF-p.MTU {
		t.Errorf("XON = %v", cfg.XON)
	}
	if err := cfg.Validate(p); err != nil {
		t.Error(err)
	}
	// A buffer that cannot give each queue a positive XON is rejected.
	p.Buffer = 12500 + 8*p.MTU
	if _, err := RecommendedBFC(p, 8); err == nil {
		t.Error("undersized buffer accepted")
	}
}

func TestBFCPerQueuePauseResume(t *testing.T) {
	env := newFakeEnv()
	p := testParams()
	cfg := BFCConfig{Queues: 4, XOFF: 100 * units.KB, XON: 98 * units.KB}
	c, err := NewBFC(cfg)(p, env)
	if err != nil {
		t.Fatal(err)
	}
	env.forward = c.Sender
	c.Receiver.Start()
	qs := c.Sender.(QueueSender)
	if qs.Queues() != 4 {
		t.Fatalf("Queues() = %d", qs.Queues())
	}
	recv := c.Receiver.(QueueReceiver)

	// Fill queue 2 past XOFF: only queue 2 pauses.
	recv.OnQueueArrival(2, 100*units.KB, 100*units.KB)
	env.eng.RunAll()
	if len(env.sent) != 1 || env.sent[0].Kind != KindQueuePause || env.sent[0].QueueID != 2 {
		t.Fatalf("messages = %+v, want one QPAUSE for queue 2", env.sent)
	}
	if ok, _ := qs.TrySendQueue(2, 1500); ok {
		t.Fatal("paused queue still sendable")
	}
	if ok, _ := qs.TrySendQueue(0, 1500); !ok {
		t.Fatal("unpaused queue blocked — HoL blocking reintroduced")
	}
	if ok, _ := c.Sender.TrySend(1500); !ok {
		t.Fatal("channel-level TrySend blocked with 3 queues free")
	}
	if c.Sender.Rate() != p.Capacity {
		t.Fatal("rate dropped with unpaused queues remaining")
	}

	// Bounce inside (XON, XOFF): silent.
	recv.OnQueueDeparture(2, 1*units.KB, 99*units.KB)
	recv.OnQueueArrival(2, 1*units.KB, 100*units.KB)
	env.eng.RunAll()
	if len(env.sent) != 1 {
		t.Fatalf("spurious messages: %+v", env.sent)
	}

	// Drain queue 2 to XON: QRESUME for queue 2 only.
	recv.OnQueueDeparture(2, 2*units.KB, 98*units.KB)
	env.eng.RunAll()
	if len(env.sent) != 2 || env.sent[1].Kind != KindQueueResume || env.sent[1].QueueID != 2 {
		t.Fatalf("messages = %+v, want QPAUSE,QRESUME", env.sent)
	}
	if ok, _ := qs.TrySendQueue(2, 1500); !ok {
		t.Fatal("queue 2 still paused after QRESUME")
	}
}

func TestBFCAllQueuesPaused(t *testing.T) {
	env := newFakeEnv()
	p := testParams()
	cfg := BFCConfig{Queues: 2, XOFF: 100 * units.KB, XON: 98 * units.KB}
	c, err := NewBFC(cfg)(p, env)
	if err != nil {
		t.Fatal(err)
	}
	env.forward = c.Sender
	recv := c.Receiver.(QueueReceiver)
	recv.OnQueueArrival(0, 100*units.KB, 100*units.KB)
	recv.OnQueueArrival(1, 100*units.KB, 200*units.KB)
	env.eng.RunAll()
	if ok, wake := c.Sender.TrySend(1500); ok || wake != units.Never {
		t.Fatal("sender not fully blocked with every queue paused")
	}
	if c.Sender.Rate() != 0 {
		t.Fatal("rate not zero with every queue paused")
	}
	// A duplicate pause must not double-count.
	c.Sender.OnFeedback(Message{Kind: KindQueuePause, QueueID: 0})
	c.Sender.OnFeedback(Message{Kind: KindQueueResume, QueueID: 0})
	if c.Sender.Rate() != p.Capacity {
		t.Fatal("rate not restored after resume")
	}
	// Out-of-range queue IDs are ignored.
	c.Sender.OnFeedback(Message{Kind: KindQueuePause, QueueID: 99})
	if c.Sender.(*bfcSender).npaused != 1 {
		t.Fatal("out-of-range QueueID changed pause state")
	}
}

func TestBFCRejectsBadConfig(t *testing.T) {
	env := newFakeEnv()
	p := testParams()
	bad := []BFCConfig{
		{Queues: 2, XOFF: 0, XON: 0},
		{Queues: 2, XOFF: 100 * units.KB, XON: 200 * units.KB},
		{Queues: -1, XOFF: 100 * units.KB, XON: 98 * units.KB},
		// 8 queues × 150KB + 12.5KB headroom > 1000KB buffer.
		{Queues: 8, XOFF: 150 * units.KB, XON: 148 * units.KB},
	}
	for i, cfg := range bad {
		if _, err := NewBFC(cfg)(p, env); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestMustFactoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFactory did not panic on error")
		}
	}()
	MustFactory(NewCBFC(CBFCConfig{}))(testParams(), newFakeEnv())
}

// Property: for any queue trajectory, buffer-based GFC's receiver emits a
// message exactly when the stage changes, and the sender's rate equals the
// stage rate of the last reported queue length.
func TestGFCBufferStageConsistency(t *testing.T) {
	f := func(qs []uint32) bool {
		env := newFakeEnv()
		p := testParams()
		c, err := NewGFCBuffer(GFCBufferConfig{B1: 750 * units.KB})(p, env)
		if err != nil {
			return false
		}
		env.forward = c.Sender
		recv := c.Receiver.(*gfcBufferReceiver)
		for _, v := range qs {
			q := units.Size(v % 1100000)
			recv.OnArrival(0, q)
			env.eng.RunAll()
			want := recv.table.StageRate(recv.table.StageFor(q))
			if c.Sender.Rate() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPFCQuantaExpiry(t *testing.T) {
	env := newFakeEnv()
	p := testParams()
	cfg := PFCConfig{XOFF: 800 * units.KB, XON: 797 * units.KB,
		PauseQuanta: 100, NoRefresh: true}
	c, err := NewPFC(cfg)(p, env)
	if err != nil {
		t.Fatal(err)
	}
	env.forward = c.Sender
	c.Receiver.OnArrival(1500, 800*units.KB)
	env.eng.Run(0)
	if ok, wake := c.Sender.TrySend(1500); ok || wake == units.Never {
		t.Fatalf("quanta pause must expose a finite wake (ok=%v wake=%v)", ok, wake)
	}
	// 100 quanta at 10G = 100·512/10e9 s = 5.12µs; after expiry the
	// sender resumes on its own (no RESUME frame).
	env.eng.Schedule(6*units.Microsecond, func() {})
	env.eng.RunAll()
	if ok, _ := c.Sender.TrySend(1500); !ok {
		t.Fatal("pause did not expire")
	}
	if c.Sender.Rate() != p.Capacity {
		t.Fatal("rate not restored after expiry")
	}
}

func TestPFCQuantaRefresh(t *testing.T) {
	env := newFakeEnv()
	p := testParams()
	cfg := PFCConfig{XOFF: 800 * units.KB, XON: 797 * units.KB, PauseQuanta: 100}
	c, err := NewPFC(cfg)(p, env)
	if err != nil {
		t.Fatal(err)
	}
	env.forward = c.Sender
	c.Receiver.OnArrival(1500, 900*units.KB) // stays far above XON
	// Run well past several quanta lifetimes: refreshes keep it paused.
	// (The refresh chain is unbounded while congested, so use a bounded
	// horizon rather than draining the queue.)
	env.eng.Run(50 * units.Microsecond)
	if ok, _ := c.Sender.TrySend(1500); ok {
		t.Fatal("refreshed pause expired")
	}
	if len(env.sent) < 5 {
		t.Fatalf("only %d PAUSE frames; refresh not happening", len(env.sent))
	}
	// Drain to XON: refresh chain stops, RESUME emitted.
	c.Receiver.OnDeparture(1500, 797*units.KB)
	env.eng.Run(env.eng.Now() + 50*units.Microsecond)
	if ok, _ := c.Sender.TrySend(1500); !ok {
		t.Fatal("sender still paused after drain")
	}
}

// Property: NextAllowed never precedes the last transmission's end, is
// monotone non-increasing in the assigned rate, and saturates cleanly to
// units.Never instead of overflowing when the countdown arithmetic exceeds
// the time range (huge R_l, tiny R_r, or a last-end near the horizon).
func TestRateLimiterNextAllowedProperties(t *testing.T) {
	f := func(endRaw, durRaw uint64, rateRaw uint32) bool {
		c := 100 * units.Gbps
		rl := NewRateLimiter(c)
		rl.MinRate = 1 // let assigned rates get arbitrarily slow
		end := units.Time(endRaw % uint64(units.Never))
		dur := units.Time(durRaw % uint64(units.Never))
		if dur == 0 {
			dur = 1
		}
		rl.OnSent(end, dur)

		lo := units.Rate(rateRaw%1000) + 1 // down to 1 b/s
		hi := lo * 1000
		rl.SetRate(lo)
		atLo := rl.NextAllowed()
		rl.SetRate(hi)
		atHi := rl.NextAllowed()
		rl.SetRate(c)
		atLine := rl.NextAllowed()

		// Never negative, never before the wire went idle.
		if atLo < end || atHi < end || atLine != end {
			return false
		}
		// Slower assigned rate cannot unblock earlier.
		if atHi > atLo {
			return false
		}
		// Saturation is exact: either a representable time or Never.
		return atLo <= units.Never && atHi <= units.Never
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// The overflow guard at the Never boundary: a countdown whose end would pass
// MaxInt64 must report Never, and one safely inside the range must not.
func TestRateLimiterNeverBoundary(t *testing.T) {
	c := 100 * units.Gbps
	rl := NewRateLimiter(c)
	rl.MinRate = 1
	rl.Slack = 0

	// ~292 years of wire time at 1 b/s against 100 Gb/s: extra overflows.
	rl.OnSent(0, units.Time(math.MaxInt64/4))
	rl.SetRate(1)
	if got := rl.NextAllowed(); got != units.Never {
		t.Fatalf("overflowing countdown = %v, want Never", got)
	}

	// A last end adjacent to the horizon overflows even with a short packet.
	rl.OnSent(units.Never-1, 1200)
	rl.SetRate(c / 2)
	if got := rl.NextAllowed(); got != units.Never {
		t.Fatalf("horizon-adjacent countdown = %v, want Never", got)
	}

	// Well inside the range the guard must not fire.
	rl.OnSent(1200, 1200)
	rl.SetRate(c / 2)
	if got := rl.NextAllowed(); got != 2400 {
		t.Fatalf("in-range countdown = %v, want 2400", got)
	}
}
