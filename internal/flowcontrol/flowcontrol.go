// Package flowcontrol implements the hop-by-hop flow controls the paper
// studies, behind one interface: PFC (IEEE 802.1Qbb), InfiniBand
// credit-based flow control (CBFC), and the three Gentle Flow Control
// variants (conceptual, buffer-based and time-based).
//
// Flow control operates per directed channel (one direction of a link) and
// per priority class. The downstream ingress side is a Receiver that
// observes its queue and emits feedback Messages; the upstream egress side
// is a Sender that gates packet transmission. The simulator (package netsim)
// carries Messages from Receiver to Sender with the physical feedback
// latency and charges their wire size against the reverse channel, which is
// what the Figure 19 overhead measurement counts.
package flowcontrol

import (
	"fmt"

	"github.com/gfcsim/gfc/internal/core"
	"github.com/gfcsim/gfc/internal/units"
)

// Kind enumerates feedback message types.
type Kind uint8

// Message kinds.
const (
	// KindPause / KindResume are PFC PAUSE frames (priority enable
	// vector + timer, §2.2.1).
	KindPause Kind = iota
	KindResume
	// KindStage carries a GFC stage ID in the repurposed Time[0..7]
	// field of a PFC frame (§5.1).
	KindStage
	// KindCredit carries an FCCL value, CBFC-style (§2.2.2).
	KindCredit
	// KindQueue carries an instantaneous queue length; used by the
	// conceptual design (§4.1), which assumes continuous feedback.
	KindQueue
	// KindQueuePause / KindQueueResume are BFC's per-queue pause frames
	// (Goyal et al.): like PFC PAUSE/RESUME but scoped to one physical
	// queue (Message.QueueID) instead of a whole priority class. Appended
	// after the original kinds so existing golden traces keep their
	// numeric values.
	KindQueuePause
	KindQueueResume
)

func (k Kind) String() string {
	switch k {
	case KindPause:
		return "PAUSE"
	case KindResume:
		return "RESUME"
	case KindStage:
		return "STAGE"
	case KindCredit:
		return "CREDIT"
	case KindQueue:
		return "QUEUE"
	case KindQueuePause:
		return "QPAUSE"
	case KindQueueResume:
		return "QRESUME"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// MessageSize is the wire size of every feedback frame: a minimum-size
// Ethernet control frame, the m of the §4.2 overhead analysis.
const MessageSize = 64 * units.Byte

// Message is one feedback frame from a Receiver to its paired Sender.
type Message struct {
	Kind     Kind
	Priority int
	Stage    int        // KindStage
	FCCL     int64      // KindCredit, in 64-byte blocks
	Queue    units.Size // KindQueue
	QueueID  int        // KindQueuePause / KindQueueResume
}

// Wire reports the frame's size on the wire.
func (m Message) Wire() units.Size { return MessageSize }

// Env is the runtime a controller executes in: the simulation clock, timer
// service and the feedback path back to the paired Sender. Implementations
// of Emit must apply the physical feedback latency.
type Env interface {
	Now() units.Time
	After(d units.Time, fn func())
	Emit(m Message)
}

// Params configures one controller instance (one channel direction, one
// priority).
type Params struct {
	Capacity units.Rate // link rate C
	Buffer   units.Size // ingress buffer allocation B for this priority
	MTU      units.Size
	Tau      units.Time // worst-case feedback latency, for safety bounds
	Priority int
}

// Validate reports an error for inconsistent parameters.
func (p Params) Validate() error {
	if p.Capacity <= 0 {
		return fmt.Errorf("flowcontrol: capacity %v must be positive", p.Capacity)
	}
	if p.Buffer <= 0 {
		return fmt.Errorf("flowcontrol: buffer %v must be positive", p.Buffer)
	}
	if p.MTU <= 0 {
		return fmt.Errorf("flowcontrol: MTU %v must be positive", p.MTU)
	}
	if p.Tau < 0 {
		return fmt.Errorf("flowcontrol: negative tau %v", p.Tau)
	}
	return nil
}

// Sender is the egress-side half of a flow controller: it decides when the
// next packet may start transmitting.
type Sender interface {
	// TrySend asks whether a packet of size s may start now. When it
	// returns false, wake is the earliest time worth retrying, or
	// units.Never to wait for the next feedback message.
	TrySend(s units.Size) (ok bool, wake units.Time)
	// OnSent records a completed transmission of size s that occupied
	// the wire for dur.
	OnSent(s units.Size, dur units.Time)
	// OnFeedback delivers a feedback message from the paired Receiver.
	OnFeedback(m Message)
	// Rate reports the currently permitted sending rate (0 when paused);
	// diagnostic, used by traces and tests.
	Rate() units.Rate
}

// Receiver is the ingress-side half: it watches the queue and generates
// feedback.
type Receiver interface {
	// Start installs any periodic behaviour (e.g. CBFC's timer) and
	// sends the initial state.
	Start()
	// OnArrival reports that a packet of size s was admitted, bringing
	// the ingress queue to q.
	OnArrival(s, q units.Size)
	// OnDeparture reports that a packet of size s left the switch,
	// bringing the ingress queue to q.
	OnDeparture(s, q units.Size)
}

// QueueSender is implemented by Senders that gate transmission per physical
// downstream queue rather than per channel (BFC). TrySendQueue is
// side-effect-free: the scheduler probes each backlogged queue with it and
// commits via the ordinary OnSent once a packet is chosen.
type QueueSender interface {
	Sender
	// TrySendQueue asks whether a packet of size s destined for
	// downstream queue qid may start now. Same contract as TrySend.
	TrySendQueue(qid int, s units.Size) (ok bool, wake units.Time)
	// Queues reports the number of physical queues the scheme assigns
	// flows to at the downstream ingress.
	Queues() int
}

// QueueReceiver is implemented by Receivers that track per-queue occupancy
// (BFC). The simulator calls these alongside OnArrival/OnDeparture with the
// queue the packet was assigned to at the upstream egress.
type QueueReceiver interface {
	Receiver
	OnQueueArrival(qid int, s, q units.Size)
	OnQueueDeparture(qid int, s, q units.Size)
}

// Bounded is implemented by Senders whose rate mapping has a finite queue
// ceiling B_m: in the absence of feedback loss the downstream ingress
// occupancy converges below it (Theorems 4.1/5.1), modulo the transient
// headroom the positive floor rate needs. Observability layers use it to
// derive the runtime occupancy ceiling they assert.
type Bounded interface {
	// Ceiling returns the mapping ceiling B_m.
	Ceiling() units.Size
}

// Staged is implemented by Senders driven by a multi-stage mapping table
// (buffer-based GFC), exposing it for static validation.
type Staged interface {
	StageTable() *core.StageTable
}

// Controller pairs the two halves for one channel/priority.
type Controller struct {
	Sender   Sender
	Receiver Receiver
}

// Factory builds a Controller for a channel with the given parameters. The
// env's Emit must deliver messages to the returned Sender.
type Factory func(p Params, env Env) (Controller, error)

// MustFactory wraps a Factory into one that panics on error; convenient in
// experiment setup code where parameters are static.
func MustFactory(f Factory) func(p Params, env Env) Controller {
	return func(p Params, env Env) Controller {
		c, err := f(p, env)
		if err != nil {
			panic(err)
		}
		return c
	}
}
