package flowcontrol

import (
	"fmt"

	"github.com/gfcsim/gfc/internal/units"
)

// CreditBlock is the InfiniBand flow-control granularity: credits are
// counted in 64-byte blocks.
const CreditBlock = 64 * units.Byte

// Blocks reports the number of credit blocks a packet of size s consumes
// (rounded up). Every packet consumes at least one block: a header-only
// (zero-payload) packet still occupies buffer and wire, and charging it
// nothing would let a sender transmit unbounded zero-size packets with no
// credit.
func Blocks(s units.Size) int64 {
	if s <= 0 {
		return 1
	}
	return int64((s + CreditBlock - 1) / CreditBlock)
}

// CBFCConfig configures credit-based flow control (InfiniBand §7.9 /
// §2.2.2 of the paper).
type CBFCConfig struct {
	// Period is the feedback interval T. The InfiniBand recommendation
	// is the time to transmit 65535 bytes [40].
	Period units.Time
}

// RecommendedCBFCPeriod returns the IB-recommended feedback period for a
// link of the given capacity: the transmission time of 65535 bytes (52.4 µs
// at 10 Gb/s, matching the paper's testbed).
func RecommendedCBFCPeriod(c units.Rate) units.Time {
	return units.TransmissionTime(65535*units.Byte, c)
}

// Validate reports an error for inconsistent configuration.
func (c CBFCConfig) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("flowcontrol: CBFC period %v must be positive", c.Period)
	}
	return nil
}

// NewCBFC returns a Factory for credit-based flow control.
//
// The receiver keeps an Adjusted Blocks Received (ABR) register — blocks
// received adjusted for buffer release, i.e. blocks that have left the
// ingress buffer — and periodically advertises the Flow Control Credit Limit
// FCCL = ABR + allocated buffer blocks. The sender tracks Flow Control Total
// Blocks Sent (FCTBS) and may transmit only while FCTBS + blocks(pkt) ≤
// FCCL. The sender therefore never has more data outstanding than the
// receiver's free buffer, which guarantees zero loss; and once the buffer
// fills without draining, FCCL stops advancing and the sender ceases — the
// hold-and-wait state the paper identifies.
func NewCBFC(cfg CBFCConfig) Factory {
	return func(p Params, env Env) (Controller, error) {
		if err := p.Validate(); err != nil {
			return Controller{}, err
		}
		if err := cfg.Validate(); err != nil {
			return Controller{}, err
		}
		return Controller{
			Sender:   &cbfcSender{p: p},
			Receiver: &cbfcReceiver{p: p, cfg: cfg, env: env},
		}, nil
	}
}

type cbfcSender struct {
	p     Params
	fctbs int64 // total blocks sent since link init
	fccl  int64 // latest credit limit received
	init  bool  // a credit message has arrived
}

func (s *cbfcSender) TrySend(sz units.Size) (bool, units.Time) {
	if !s.init {
		// Link-init grace: the first credit advertisement is in
		// flight; IB initialises credits at link bring-up, which the
		// receiver's Start() models. Hold until it lands.
		return false, units.Never
	}
	if s.fctbs+Blocks(sz) <= s.fccl {
		return true, 0
	}
	return false, units.Never // next periodic credit update will kick us
}

func (s *cbfcSender) OnSent(sz units.Size, _ units.Time) {
	s.fctbs += Blocks(sz)
}

func (s *cbfcSender) OnFeedback(m Message) {
	if m.Kind != KindCredit {
		return
	}
	s.init = true
	// FCCL is monotone in a loss-free control channel; keep the max so a
	// reordered stale advertisement cannot revoke credit.
	if m.FCCL > s.fccl {
		s.fccl = m.FCCL
	}
}

// Rate reports line rate while at least a full packet's worth of credit
// remains, zero when effectively exhausted (a residual of less than one MTU
// cannot move anything).
func (s *cbfcSender) Rate() units.Rate {
	if s.init && units.Size(s.fccl-s.fctbs)*CreditBlock >= s.p.MTU {
		return s.p.Capacity
	}
	return 0
}

// Credits reports the available credit in blocks (diagnostic).
func (s *cbfcSender) Credits() int64 { return s.fccl - s.fctbs }

type cbfcReceiver struct {
	p   Params
	cfg CBFCConfig
	env Env
	abr int64 // blocks released from the ingress buffer since link init
}

func (r *cbfcReceiver) Start() {
	r.advertise()
	r.tick()
}

func (r *cbfcReceiver) tick() {
	r.env.After(r.cfg.Period, func() {
		r.advertise()
		r.tick()
	})
}

func (r *cbfcReceiver) advertise() {
	fccl := r.abr + int64(r.p.Buffer/CreditBlock)
	r.env.Emit(Message{Kind: KindCredit, Priority: r.p.Priority, FCCL: fccl})
}

func (r *cbfcReceiver) OnArrival(_, _ units.Size) {}

func (r *cbfcReceiver) OnDeparture(s, _ units.Size) {
	r.abr += Blocks(s)
}
