package flowcontrol

import (
	"fmt"

	"github.com/gfcsim/gfc/internal/units"
)

// DefaultBFCQueues is the number of physical queues BFC assigns flows to at
// each ingress when the config does not say otherwise. The BFC paper shows
// most of the benefit with a small multiple of the expected active-flow
// count per port; 8 keeps the per-channel state compact.
const DefaultBFCQueues = 8

// BFCConfig configures Backpressure Flow Control (Goyal et al., NSDI 2022):
// each ingress maintains a set of physical queues, flows are dynamically
// assigned to queues at enqueue time, and pause/resume feedback is scoped to
// one queue instead of a whole priority class. A paused queue stops only the
// flows mapped to it — the victim flows of classic PFC head-of-line blocking
// keep moving through the other queues.
type BFCConfig struct {
	// Queues is the number of physical queues per channel/priority.
	// Zero means DefaultBFCQueues.
	Queues int
	// XOFF pauses a queue when its occupancy reaches it; XON resumes at
	// or below it. Both are per-queue thresholds.
	XOFF units.Size
	XON  units.Size
}

// RecommendedBFC derives per-queue thresholds from the channel parameters:
// the buffer minus the Cτ in-flight headroom is split evenly across queues
// (so even with every queue parked at XOFF the channel stays lossless), and
// XON sits one MTU below XOFF. Buffers too small to give every queue a
// positive XON are rejected.
func RecommendedBFC(p Params, queues int) (BFCConfig, error) {
	if queues <= 0 {
		queues = DefaultBFCQueues
	}
	headroom := units.BytesIn(p.Capacity, p.Tau)
	xoff := (p.Buffer - headroom) / units.Size(queues)
	xon := xoff - p.MTU
	if xon <= 0 {
		return BFCConfig{}, fmt.Errorf(
			"flowcontrol: buffer %v too small for BFC with %d queues: need more than Cτ + queues·MTU = %v",
			p.Buffer, queues, headroom+units.Size(queues)*p.MTU)
	}
	return BFCConfig{Queues: queues, XOFF: xoff, XON: xon}, nil
}

// Validate reports an error for inconsistent thresholds.
func (c BFCConfig) Validate(p Params) error {
	q := c.Queues
	if q == 0 {
		q = DefaultBFCQueues
	}
	if q < 0 {
		return fmt.Errorf("flowcontrol: BFC queues %d must be positive", c.Queues)
	}
	if c.XOFF <= 0 {
		return fmt.Errorf("flowcontrol: BFC XOFF %v must be positive", c.XOFF)
	}
	if c.XON <= 0 || c.XON > c.XOFF {
		return fmt.Errorf("flowcontrol: BFC XON %v outside (0, XOFF=%v]", c.XON, c.XOFF)
	}
	if total := units.Size(q)*c.XOFF + units.BytesIn(p.Capacity, p.Tau); total > p.Buffer {
		return fmt.Errorf("flowcontrol: %d queues at XOFF %v plus Cτ headroom exceed buffer %v",
			q, c.XOFF, p.Buffer)
	}
	return nil
}

// NewBFC returns a Factory for BFC with explicit thresholds.
func NewBFC(cfg BFCConfig) Factory {
	return func(p Params, env Env) (Controller, error) {
		if err := p.Validate(); err != nil {
			return Controller{}, err
		}
		if err := cfg.Validate(p); err != nil {
			return Controller{}, err
		}
		if cfg.Queues == 0 {
			cfg.Queues = DefaultBFCQueues
		}
		return Controller{
			Sender:   &bfcSender{p: p, cfg: cfg, paused: make([]bool, cfg.Queues)},
			Receiver: &bfcReceiver{p: p, cfg: cfg, env: env, qlen: make([]units.Size, cfg.Queues), paused: make([]bool, cfg.Queues)},
		}, nil
	}
}

// NewBFCQueues returns a BFC Factory with RecommendedBFC thresholds over the
// given queue count (<= 0 uses DefaultBFCQueues).
func NewBFCQueues(queues int) Factory {
	return func(p Params, env Env) (Controller, error) {
		cfg, err := RecommendedBFC(p, queues)
		if err != nil {
			return Controller{}, err
		}
		return NewBFC(cfg)(p, env)
	}
}

// NewBFCDefault returns a BFC Factory with RecommendedBFC thresholds and
// DefaultBFCQueues queues.
func NewBFCDefault() Factory { return NewBFCQueues(DefaultBFCQueues) }

// bfcSender gates transmission per downstream queue: a queue is blocked
// while a QPAUSE for it is outstanding, everything else moves at line rate.
type bfcSender struct {
	p   Params
	cfg BFCConfig
	env Env

	paused  []bool
	npaused int
}

func (s *bfcSender) Queues() int { return s.cfg.Queues }

func (s *bfcSender) TrySendQueue(qid int, _ units.Size) (bool, units.Time) {
	if s.paused[qid] {
		return false, units.Never // a QRESUME will kick us
	}
	return true, 0
}

// TrySend is the channel-level fallback used when the simulator has no
// per-queue scheduler wired (hosts, or FlowQueues disabled): send while any
// queue is unpaused.
func (s *bfcSender) TrySend(units.Size) (bool, units.Time) {
	if s.npaused == len(s.paused) {
		return false, units.Never
	}
	return true, 0
}

func (s *bfcSender) OnSent(units.Size, units.Time) {}

func (s *bfcSender) OnFeedback(m Message) {
	if m.QueueID < 0 || m.QueueID >= len(s.paused) {
		return
	}
	switch m.Kind {
	case KindQueuePause:
		if !s.paused[m.QueueID] {
			s.paused[m.QueueID] = true
			s.npaused++
		}
	case KindQueueResume:
		if s.paused[m.QueueID] {
			s.paused[m.QueueID] = false
			s.npaused--
		}
	}
}

// Rate reports line rate while any queue may send, zero when every queue is
// paused. Diagnostic only: the scheduler uses TrySendQueue per backlog.
func (s *bfcSender) Rate() units.Rate {
	if s.npaused == len(s.paused) {
		return 0
	}
	return s.p.Capacity
}

// PausedQueues reports how many queues are currently paused (diagnostic).
func (s *bfcSender) PausedQueues() int { return s.npaused }

// bfcReceiver tracks per-queue ingress occupancy and emits QPAUSE/QRESUME
// around the per-queue thresholds, mirroring pfcReceiver's believed-state
// dedup so a queue bouncing inside (XON, XOFF) stays silent.
type bfcReceiver struct {
	p   Params
	cfg BFCConfig
	env Env

	qlen   []units.Size
	paused []bool // believed upstream state per queue
}

func (r *bfcReceiver) Start() {}

// OnArrival / OnDeparture are no-ops: all accounting arrives through the
// per-queue variants.
func (r *bfcReceiver) OnArrival(_, _ units.Size)   {}
func (r *bfcReceiver) OnDeparture(_, _ units.Size) {}

func (r *bfcReceiver) OnQueueArrival(qid int, s, _ units.Size) {
	r.qlen[qid] += s
	if !r.paused[qid] && r.qlen[qid] >= r.cfg.XOFF {
		r.paused[qid] = true
		r.env.Emit(Message{Kind: KindQueuePause, Priority: r.p.Priority, QueueID: qid})
	}
}

func (r *bfcReceiver) OnQueueDeparture(qid int, s, _ units.Size) {
	r.qlen[qid] -= s
	if r.qlen[qid] < 0 {
		r.qlen[qid] = 0
	}
	if r.paused[qid] && r.qlen[qid] <= r.cfg.XON {
		r.paused[qid] = false
		r.env.Emit(Message{Kind: KindQueueResume, Priority: r.p.Priority, QueueID: qid})
	}
}
