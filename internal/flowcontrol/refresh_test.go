package flowcontrol

import (
	"testing"

	"github.com/gfcsim/gfc/internal/units"
)

// newRefreshGFC builds a buffer-based GFC controller with periodic stage
// refresh, wired through the fake env (delivery controllable via forward).
func newRefreshGFC(t *testing.T, env *fakeEnv, refresh units.Time) Controller {
	t.Helper()
	c, err := NewGFCBuffer(GFCBufferConfig{
		B1: 750 * units.KB, Refresh: refresh,
	})(testParams(), env)
	if err != nil {
		t.Fatal(err)
	}
	env.forward = c.Sender
	return c
}

// TestGFCBufferRefreshRepairsLoss is the loss-robustness regression: stage
// feedback is edge-triggered, so without refresh a single lost message
// leaves the sender on a stale rate forever; with Refresh the receiver
// re-advertises and the sender recovers within one period.
func TestGFCBufferRefreshRepairsLoss(t *testing.T) {
	const refresh = 50 * units.Microsecond
	env := newFakeEnv()
	c := newRefreshGFC(t, env, refresh)
	c.Receiver.Start()
	line := c.Sender.Rate()

	// Lose the crossing message: the queue enters stage 1 but the sender
	// never hears it.
	env.forward = nil
	c.Receiver.OnArrival(1500, 760*units.KB)
	env.eng.Run(env.eng.Now() + units.Microsecond)
	if got := c.Sender.Rate(); got != line {
		t.Fatalf("sender rate %v before any delivered feedback, want line rate %v", got, line)
	}

	// Restore delivery: the next refresh re-advertises stage 1.
	env.forward = c.Sender
	env.eng.Run(env.eng.Now() + 2*refresh)
	if got := c.Sender.Rate(); got >= line {
		t.Fatalf("sender rate %v after refresh, want below line rate %v", got, line)
	}
}

// TestGFCBufferNoRefreshStaysStale pins the default (Refresh == 0)
// behaviour the golden traces depend on: a lost stage message is never
// repaired, and no periodic traffic appears.
func TestGFCBufferNoRefreshStaysStale(t *testing.T) {
	env := newFakeEnv()
	c := newBufferGFC(t, env)
	c.Receiver.Start()
	line := c.Sender.Rate()

	env.forward = nil
	c.Receiver.OnArrival(1500, 760*units.KB)
	sent := len(env.sent)
	env.forward = c.Sender
	env.eng.Run(env.eng.Now() + 10*units.Millisecond)
	if len(env.sent) != sent {
		t.Fatalf("edge-triggered receiver emitted %d extra messages", len(env.sent)-sent)
	}
	if got := c.Sender.Rate(); got != line {
		t.Fatalf("sender rate %v, want stale line rate %v", got, line)
	}
}

// TestGFCBufferRefreshQuietChannel: a channel that never crossed a
// threshold has advertised nothing upstream could have lost, so refresh
// must not generate traffic on it (clean-run overhead is unchanged).
func TestGFCBufferRefreshQuietChannel(t *testing.T) {
	const refresh = 50 * units.Microsecond
	env := newFakeEnv()
	c := newRefreshGFC(t, env, refresh)
	c.Receiver.Start()
	c.Receiver.OnArrival(1500, 100*units.KB) // below B1, no crossing
	env.eng.Run(20 * refresh)
	if len(env.sent) != 0 {
		t.Fatalf("quiet channel emitted %d refresh messages", len(env.sent))
	}
}

// TestGFCBufferRefreshTracksCurrentStage: refresh advertises the stage of
// the *current* queue, not the stage at loss time.
func TestGFCBufferRefreshTracksCurrentStage(t *testing.T) {
	const refresh = 50 * units.Microsecond
	env := newFakeEnv()
	c := newRefreshGFC(t, env, refresh)
	c.Receiver.Start()

	c.Receiver.OnArrival(1500, 760*units.KB) // stage 1, delivered
	env.eng.Run(env.eng.Now() + units.Microsecond)

	// Queue drains below B1 but the stage-0 message is lost.
	env.forward = nil
	c.Receiver.OnDeparture(1500, 100*units.KB)
	env.forward = c.Sender
	env.eng.Run(env.eng.Now() + 2*refresh)
	if got, want := c.Sender.Rate(), testParams().Capacity; got != want {
		t.Fatalf("sender rate %v after refresh of drained queue, want line rate %v", got, want)
	}
}
