package flowcontrol

import (
	"fmt"
	"math"

	"github.com/gfcsim/gfc/internal/units"
)

// PFCConfig holds the Priority Flow Control thresholds (IEEE 802.1Qbb,
// §2.2.1): the receiver emits PAUSE when its ingress queue reaches XOFF and
// RESUME when it falls to or below XON. Headroom above XOFF absorbs the
// ≤ Cτ of data in flight before the PAUSE takes effect.
type PFCConfig struct {
	XOFF units.Size
	XON  units.Size
	// PauseQuanta, when positive, models the real 802.1Qbb timer: a
	// PAUSE lasts PauseQuanta × 512 bit-times and then expires, and the
	// receiver refreshes it at half-life while the queue remains above
	// XON. Zero keeps the simpler pause-until-RESUME model (equivalent
	// to a receiver that always refreshes in time, which is how
	// deadlocks persist in practice).
	//
	// A finite timer without refresh would self-heal deadlocks — that
	// behaviour is exactly what vendor "PFC watchdog" features exploit;
	// set Refresh to false to model it.
	PauseQuanta int
	// Refresh controls whether the receiver re-arms an expiring pause
	// while still congested. Only meaningful with PauseQuanta > 0;
	// default true (set NoRefresh to disable).
	NoRefresh bool
}

// quantaDuration converts pause quanta to time at capacity c: one quantum
// is 512 bit-times, rounded half-up to the nanosecond clock. Truncation is
// not good enough at high capacities — at 400 Gb/s a quantum is 1.28 ns and
// every refresh cycle would otherwise shave the fraction off again.
func quantaDuration(q int, c units.Rate) units.Time {
	return units.Time(math.Round(float64(q) * 512 / float64(c) * 1e9))
}

// RecommendedPFC derives thresholds from the buffer size, capacity and
// feedback latency: XOFF leaves Cτ headroom (the 802.1Qbb minimum) and XON
// sits 2 MTU below XOFF, the interval recommended in DCQCN deployments [59].
// A buffer of Cτ + 2·MTU or less cannot host both the headroom and a
// positive XON, so it is rejected here instead of producing a non-positive
// threshold that only fails later in Validate.
func RecommendedPFC(p Params) (PFCConfig, error) {
	headroom := units.BytesIn(p.Capacity, p.Tau)
	xoff := p.Buffer - headroom
	xon := xoff - 2*p.MTU
	if xon <= 0 {
		return PFCConfig{}, fmt.Errorf(
			"flowcontrol: buffer %v too small for PFC: need more than Cτ+2·MTU = %v",
			p.Buffer, headroom+2*p.MTU)
	}
	return PFCConfig{XOFF: xoff, XON: xon}, nil
}

// Validate reports an error for inconsistent thresholds.
func (c PFCConfig) Validate(p Params) error {
	if c.XOFF <= 0 || c.XOFF > p.Buffer {
		return fmt.Errorf("flowcontrol: XOFF %v outside (0, %v]", c.XOFF, p.Buffer)
	}
	if c.XON <= 0 || c.XON > c.XOFF {
		return fmt.Errorf("flowcontrol: XON %v outside (0, XOFF=%v]", c.XON, c.XOFF)
	}
	if head := p.Buffer - c.XOFF; head < units.BytesIn(p.Capacity, p.Tau) {
		return fmt.Errorf("flowcontrol: headroom %v below Cτ=%v; PAUSE cannot guarantee losslessness",
			head, units.BytesIn(p.Capacity, p.Tau))
	}
	return nil
}

// NewPFC returns a Factory for PFC with explicit thresholds.
func NewPFC(cfg PFCConfig) Factory {
	return func(p Params, env Env) (Controller, error) {
		if err := p.Validate(); err != nil {
			return Controller{}, err
		}
		if err := cfg.Validate(p); err != nil {
			return Controller{}, err
		}
		return Controller{
			Sender:   &pfcSender{p: p, cfg: cfg, env: env},
			Receiver: &pfcReceiver{p: p, cfg: cfg, env: env},
		}, nil
	}
}

// NewPFCDefault returns a PFC Factory with RecommendedPFC thresholds.
func NewPFCDefault() Factory {
	return func(p Params, env Env) (Controller, error) {
		cfg, err := RecommendedPFC(p)
		if err != nil {
			return Controller{}, err
		}
		return NewPFC(cfg)(p, env)
	}
}

type pfcSender struct {
	p   Params
	cfg PFCConfig
	env Env

	paused bool
	// expiry is when a quanta-limited pause runs out; Never for the
	// pause-until-RESUME model.
	expiry units.Time
}

func (s *pfcSender) isPaused() bool {
	if !s.paused {
		return false
	}
	if s.cfg.PauseQuanta > 0 && s.env.Now() >= s.expiry {
		s.paused = false // timer ran out without a refresh
	}
	return s.paused
}

func (s *pfcSender) TrySend(units.Size) (bool, units.Time) {
	if s.isPaused() {
		if s.cfg.PauseQuanta > 0 {
			return false, s.expiry
		}
		return false, units.Never // a RESUME will kick us
	}
	return true, 0
}

func (s *pfcSender) OnSent(units.Size, units.Time) {}

func (s *pfcSender) OnFeedback(m Message) {
	switch m.Kind {
	case KindPause:
		s.paused = true
		if s.cfg.PauseQuanta > 0 {
			s.expiry = s.env.Now() + quantaDuration(s.cfg.PauseQuanta, s.p.Capacity)
		} else {
			s.expiry = units.Never
		}
	case KindResume:
		s.paused = false
	}
}

func (s *pfcSender) Rate() units.Rate {
	if s.isPaused() {
		return 0
	}
	return s.p.Capacity
}

type pfcReceiver struct {
	p      Params
	cfg    PFCConfig
	env    Env
	paused bool // believed upstream state
	lastQ  units.Size
}

func (r *pfcReceiver) Start() {}

func (r *pfcReceiver) pause() {
	r.paused = true
	r.env.Emit(Message{Kind: KindPause, Priority: r.p.Priority})
	if r.cfg.PauseQuanta > 0 && !r.cfg.NoRefresh {
		// Re-arm at half-life while the queue has not drained to XON,
		// as real receivers do.
		r.env.After(quantaDuration(r.cfg.PauseQuanta, r.p.Capacity)/2, func() {
			if r.paused && r.lastQ > r.cfg.XON {
				r.pause()
			}
		})
	}
}

func (r *pfcReceiver) OnArrival(_, q units.Size) {
	r.lastQ = q
	if !r.paused && q >= r.cfg.XOFF {
		r.pause()
	}
}

func (r *pfcReceiver) OnDeparture(_, q units.Size) {
	r.lastQ = q
	if r.paused && q <= r.cfg.XON {
		r.paused = false
		r.env.Emit(Message{Kind: KindResume, Priority: r.p.Priority})
	}
}
