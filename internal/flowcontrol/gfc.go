package flowcontrol

import (
	"fmt"
	"sync"

	"github.com/gfcsim/gfc/internal/core"
	"github.com/gfcsim/gfc/internal/units"
)

// GFCBufferConfig configures buffer-based GFC (§5.1): the Message Generator
// fires whenever the ingress queue crosses a stage threshold and the Rate
// Adjuster maps the carried stage ID to a sending rate through the
// multi-stage table.
type GFCBufferConfig struct {
	// B1 is the first stage threshold; it must satisfy B1 ≤ B − 2Cτ
	// (§5.4). Zero means "derive the safe maximum from Params".
	B1 units.Size
	// Bm is the mapping ceiling; zero defaults to the buffer size minus
	// four MTUs. The paper sets B_m = B outright, but its final stage
	// keeps a positive rate (§4.2), so under a fully stopped drain the
	// queue can exceed B_m by a few packets before feedback bites — the
	// small default headroom preserves strict losslessness there.
	Bm units.Size
	// MinRate is the rate-limiter granularity floor; zero means the
	// commodity default of 8 Kb/s.
	MinRate units.Rate
	// Slack is the rate-limiter conservatism; zero means the limiter
	// default (see RateLimiter.Slack).
	Slack float64
	// Ratio is the per-stage rate ratio R_k/R_{k−1}; zero means the
	// paper's 1/2 (equation 4). Equation (3) requires ≤ 3/4.
	Ratio float64
	// Refresh, when positive, re-advertises the current stage every
	// Refresh even without a threshold crossing. Stage feedback is
	// edge-triggered, so a single lost message otherwise leaves the
	// sender on a stale rate forever; periodic refresh bounds the
	// staleness at one Refresh period past the loss burst (the same
	// repair PFC gets from pause-frame refresh and CBFC from periodic
	// credit adverts). Zero keeps the pure edge-triggered behaviour of
	// §5.1 and its Figure-19 overhead numbers.
	Refresh units.Time
}

// stageTableKey identifies a stage-table construction; tables are pure
// functions of it.
type stageTableKey struct {
	c      units.Rate
	bm, b1 units.Size
	ratio  float64
}

// NewGFCBuffer returns a Factory for buffer-based GFC. The factory memoizes
// stage tables per distinct (capacity, Bm, B1, ratio): a table is immutable
// after construction and identical for every channel with the same link
// parameters, so a k-ary fat-tree wires thousands of controllers from a
// handful of tables instead of building one each. The mutex makes the cache
// safe when one Factory value is shared across sweep workers building
// networks concurrently.
func NewGFCBuffer(cfg GFCBufferConfig) Factory {
	var (
		mu     sync.Mutex
		tables map[stageTableKey]*core.StageTable
	)
	return func(p Params, env Env) (Controller, error) {
		if err := p.Validate(); err != nil {
			return Controller{}, err
		}
		bm := cfg.Bm
		if bm == 0 {
			bm = p.Buffer - 4*p.MTU
		}
		ratio := cfg.Ratio
		if ratio == 0 {
			ratio = 0.5
		}
		// Equation (1) generalised: B1 ≤ Bm − Cτ/(1−ratio).
		need := units.Size(float64(units.BytesIn(p.Capacity, p.Tau)) / (1 - ratio))
		bound := bm - need
		b1 := cfg.B1
		if b1 == 0 {
			b1 = bound
		}
		if b1 > bound {
			return Controller{}, fmt.Errorf(
				"flowcontrol: B1 %v exceeds safe bound %v (Bm−Cτ/(1−r), r=%v, τ=%v)",
				b1, bound, ratio, p.Tau)
		}
		key := stageTableKey{c: p.Capacity, bm: bm, b1: b1, ratio: ratio}
		mu.Lock()
		table, ok := tables[key]
		mu.Unlock()
		if !ok {
			var err error
			table, err = core.NewStageTableRatio(p.Capacity, bm, b1, ratio)
			if err != nil {
				return Controller{}, err
			}
			mu.Lock()
			if tables == nil {
				tables = make(map[stageTableKey]*core.StageTable)
			}
			tables[key] = table
			mu.Unlock()
		}
		rl := NewRateLimiter(p.Capacity)
		if cfg.MinRate > 0 {
			rl.MinRate = cfg.MinRate
		}
		if cfg.Slack > 0 {
			rl.Slack = cfg.Slack
		}
		return Controller{
			Sender:   &gfcBufferSender{p: p, table: table, rl: rl, env: env},
			Receiver: &gfcBufferReceiver{p: p, table: table, env: env, refresh: cfg.Refresh},
		}, nil
	}
}

type gfcBufferSender struct {
	p     Params
	table *core.StageTable
	rl    *RateLimiter
	env   Env
	stage int
}

func (s *gfcBufferSender) TrySend(units.Size) (bool, units.Time) {
	next := s.rl.NextAllowed()
	if now := s.env.Now(); next > now {
		return false, next
	}
	return true, 0
}

func (s *gfcBufferSender) OnSent(_ units.Size, dur units.Time) {
	s.rl.OnSent(s.env.Now(), dur)
}

func (s *gfcBufferSender) OnFeedback(m Message) {
	if m.Kind != KindStage {
		return
	}
	s.stage = m.Stage
	s.rl.SetRate(s.table.StageRate(m.Stage))
}

func (s *gfcBufferSender) Rate() units.Rate { return s.rl.Rate() }

// Stage reports the last stage ID received (diagnostic).
func (s *gfcBufferSender) Stage() int { return s.stage }

// Ceiling returns the stage table's mapping ceiling B_m (Bounded).
func (s *gfcBufferSender) Ceiling() units.Size { return s.table.Bm }

// StageTable exposes the mapping table for validation (Staged).
func (s *gfcBufferSender) StageTable() *core.StageTable { return s.table }

// gfcBufferReceiver is the buffer-based Message Generator. Messages are
// paced to at most one per τ: §4.2's overhead analysis ("in the worst case,
// feedback messages are generated every τ") assumes exactly this, and
// without it a queue flapping across a stage boundary would emit per packet.
// A crossing during the hold-off is coalesced into one deferred message
// carrying the then-current stage; the stage inequalities (eq. 1) budget one
// τ of reaction delay, so the deferral preserves the safety argument.
type gfcBufferReceiver struct {
	p       Params
	table   *core.StageTable
	env     Env
	refresh units.Time // 0: pure edge-triggered (no loss repair)

	sent     int // last stage reported upstream
	lastQ    units.Size
	lastEmit units.Time
	started  bool
	pending  bool
}

func (r *gfcBufferReceiver) Start() {
	if r.refresh > 0 {
		r.env.After(r.refresh, r.tick)
	}
}

// tick is the periodic refresh: re-advertise the current stage so a lost
// stage message costs at most one Refresh period of stale rate. Quiet
// channels stay quiet — until the first crossing there is nothing upstream
// could have lost, and re-advertising stage 0 forever would change the
// clean-run feedback overhead.
func (r *gfcBufferReceiver) tick() {
	if r.started && !r.pending {
		r.emit(r.table.StageFor(r.lastQ))
	}
	r.env.After(r.refresh, r.tick)
}

func (r *gfcBufferReceiver) gap() units.Time {
	if r.p.Tau > 0 {
		return r.p.Tau
	}
	return units.Microsecond
}

func (r *gfcBufferReceiver) observe(q units.Size) {
	r.lastQ = q
	if r.pending {
		return // a deferred emission will report the latest stage
	}
	st := r.table.StageFor(q)
	if st == r.sent {
		return
	}
	now := r.env.Now()
	if r.started && now-r.lastEmit < r.gap() {
		r.pending = true
		r.env.After(r.lastEmit+r.gap()-now, r.flush)
		return
	}
	r.emit(st)
}

func (r *gfcBufferReceiver) flush() {
	r.pending = false
	if st := r.table.StageFor(r.lastQ); st != r.sent {
		r.emit(st)
	}
}

func (r *gfcBufferReceiver) emit(st int) {
	r.sent = st
	r.started = true
	r.lastEmit = r.env.Now()
	r.env.Emit(Message{Kind: KindStage, Priority: r.p.Priority, Stage: st})
}

func (r *gfcBufferReceiver) OnArrival(_, q units.Size)   { r.observe(q) }
func (r *gfcBufferReceiver) OnDeparture(_, q units.Size) { r.observe(q) }

// GFCConceptualConfig configures the conceptual design of §4.1: feedback is
// (approximately) continuous — a message on every queue change — and the
// mapping function is the linear one of Figure 4(b). Impractical on real
// wires (the message rate is unbounded) but exactly what Figure 5 simulates.
type GFCConceptualConfig struct {
	// B0 is the activation threshold; zero derives the Theorem 4.1 safe
	// maximum Bm − 4Cτ.
	B0 units.Size
	// Bm is the mapping ceiling; zero means the buffer size.
	Bm units.Size
	// MinRate floors the mapped rate; zero means 8 Kb/s.
	MinRate units.Rate
}

// NewGFCConceptual returns a Factory for conceptual GFC.
func NewGFCConceptual(cfg GFCConceptualConfig) Factory {
	return func(p Params, env Env) (Controller, error) {
		if err := p.Validate(); err != nil {
			return Controller{}, err
		}
		bm := cfg.Bm
		if bm == 0 {
			bm = p.Buffer
		}
		b0 := cfg.B0
		if b0 == 0 {
			b0 = core.ConceptualB0Bound(bm, p.Capacity, p.Tau)
		}
		if b0 <= 0 || b0 >= bm {
			return Controller{}, fmt.Errorf("flowcontrol: conceptual GFC needs 0 < B0 (%v) < Bm (%v); buffer too small for τ=%v",
				b0, bm, p.Tau)
		}
		m := core.ContinuousMapping{C: p.Capacity, B0: b0, Bm: bm}
		rl := NewRateLimiter(p.Capacity)
		if cfg.MinRate > 0 {
			rl.MinRate = cfg.MinRate
		}
		return Controller{
			Sender:   &gfcContinuousSender{p: p, mapping: m, rl: rl, env: env},
			Receiver: &gfcConceptualReceiver{p: p, env: env},
		}, nil
	}
}

// gfcContinuousSender maps a queue-length signal through the continuous
// mapping function; shared by conceptual GFC (signal = reported queue) and
// time-based GFC (signal = Bm − remaining credit).
type gfcContinuousSender struct {
	p       Params
	mapping core.ContinuousMapping
	rl      *RateLimiter
	env     Env
}

func (s *gfcContinuousSender) TrySend(units.Size) (bool, units.Time) {
	next := s.rl.NextAllowed()
	if now := s.env.Now(); next > now {
		return false, next
	}
	return true, 0
}

func (s *gfcContinuousSender) OnSent(_ units.Size, dur units.Time) {
	s.rl.OnSent(s.env.Now(), dur)
}

func (s *gfcContinuousSender) OnFeedback(m Message) {
	if m.Kind != KindQueue {
		return
	}
	s.rl.SetRate(s.mapping.Rate(m.Queue))
}

func (s *gfcContinuousSender) Rate() units.Rate { return s.rl.Rate() }

// Ceiling returns the continuous mapping's ceiling B_m (Bounded).
func (s *gfcContinuousSender) Ceiling() units.Size { return s.mapping.Bm }

type gfcConceptualReceiver struct {
	p    Params
	env  Env
	last units.Size
	sent bool
}

func (r *gfcConceptualReceiver) Start() {}

func (r *gfcConceptualReceiver) observe(q units.Size) {
	if r.sent && q == r.last {
		return
	}
	r.sent = true
	r.last = q
	r.env.Emit(Message{Kind: KindQueue, Priority: r.p.Priority, Queue: q})
}

func (r *gfcConceptualReceiver) OnArrival(_, q units.Size)   { r.observe(q) }
func (r *gfcConceptualReceiver) OnDeparture(_, q units.Size) { r.observe(q) }
