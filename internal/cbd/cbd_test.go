package cbd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
)

func TestRingHasCBD(t *testing.T) {
	topo := topology.Ring(3, topology.DefaultLinkParams())
	g := NewGraph(topo)
	for _, p := range routing.RingClockwisePaths(topo, 3) {
		g.AddPath(p)
	}
	if !g.HasCycle() {
		t.Fatal("Figure 1 ring traffic must form a CBD")
	}
	cyc := g.FindCycle()
	if len(cyc) != 3 {
		t.Fatalf("cycle length = %d, want 3 channels", len(cyc))
	}
	// The cycle must chain: each channel's To is the next channel's From.
	for i := range cyc {
		next := cyc[(i+1)%len(cyc)]
		if cyc[i].To != next.From {
			t.Fatalf("cycle does not chain: %v", cyc)
		}
	}
}

func TestSingleFlowNoCBD(t *testing.T) {
	topo := topology.Ring(3, topology.DefaultLinkParams())
	tab := routing.NewSPF(topo)
	h1 := topo.MustLookup("H1")
	h2 := topo.MustLookup("H2")
	p, err := tab.Path(h1, h2, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGraph(topo)
	g.AddPath(p)
	if g.HasCycle() {
		t.Fatal("single acyclic flow reported as CBD")
	}
	if g.FindCycle() != nil {
		t.Fatal("FindCycle returned non-nil for acyclic graph")
	}
}

func TestLinearChainNoCBD(t *testing.T) {
	topo := topology.Linear(5, topology.DefaultLinkParams())
	tab := routing.NewSPF(topo)
	hosts := topo.Hosts()
	g := NewGraph(topo)
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			p, err := tab.Path(src, dst, FlowKey(src, dst))
			if err != nil {
				t.Fatal(err)
			}
			g.AddPath(p)
		}
	}
	if g.HasCycle() {
		t.Fatal("linear chain cannot have a CBD")
	}
}

func TestHealthyFatTreeNoCBD(t *testing.T) {
	// Fat-tree with up-down routing and no failures is CBD-free: SPF
	// paths go up then down, never down-up-down.
	topo := topology.FatTree(4, topology.DefaultLinkParams())
	tab := routing.NewSPF(topo)
	g := FromAllPairs(topo, tab, nil)
	if g.HasCycle() {
		t.Fatalf("healthy fat-tree reported CBD; cycle=%v", g.FindCycle())
	}
	if g.NumChannels() == 0 {
		t.Fatal("no channels recorded")
	}
}

func TestStronglyConnected(t *testing.T) {
	topo := topology.Ring(4, topology.DefaultLinkParams())
	g := NewGraph(topo)
	for _, p := range routing.RingClockwisePaths(topo, 4) {
		g.AddPath(p)
	}
	comps := g.StronglyConnected()
	if len(comps) != 1 {
		t.Fatalf("components = %d, want 1", len(comps))
	}
	if len(comps[0]) != 4 {
		t.Fatalf("component size = %d, want 4", len(comps[0]))
	}
}

func TestStronglyConnectedEmpty(t *testing.T) {
	topo := topology.Linear(3, topology.DefaultLinkParams())
	tab := routing.NewSPF(topo)
	g := FromAllPairs(topo, tab, nil)
	if comps := g.StronglyConnected(); len(comps) != 0 {
		t.Fatalf("acyclic graph has %d SCCs", len(comps))
	}
}

func TestRackFilter(t *testing.T) {
	topo := topology.FatTree(4, topology.DefaultLinkParams())
	tab := routing.NewSPF(topo)
	// Group all hosts into one rack: no pairs at all.
	g := FromAllPairs(topo, tab, func(topology.NodeID) int { return 0 })
	if g.NumChannels() != 0 {
		t.Fatalf("rack filter ignored: %d channels", g.NumChannels())
	}
}

func TestDuplicateEdgesIgnored(t *testing.T) {
	topo := topology.Ring(3, topology.DefaultLinkParams())
	g := NewGraph(topo)
	paths := routing.RingClockwisePaths(topo, 3)
	for i := 0; i < 5; i++ { // add same paths repeatedly
		for _, p := range paths {
			g.AddPath(p)
		}
	}
	if got := g.NumChannels(); got != 3 {
		t.Fatalf("channels = %d, want 3 (deduplicated)", got)
	}
}

// Property: FindCycle agrees with HasCycle, and any returned cycle is a real
// cycle in the graph built from random fat-tree failure scenarios.
func TestFindCycleConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo := topology.FatTree(4, topology.DefaultLinkParams())
		topo.FailRandomLinks(rng, 0.08)
		tab := routing.NewSPF(topo)
		g := FromAllPairs(topo, tab, nil)
		cyc := g.FindCycle()
		if (cyc != nil) != g.HasCycle() {
			return false
		}
		if cyc == nil {
			return true
		}
		if len(cyc) < 2 {
			return false
		}
		for i := range cyc {
			next := cyc[(i+1)%len(cyc)]
			if cyc[i].To != next.From {
				return false
			}
		}
		// Channels in the cycle must be switch-switch.
		for _, c := range cyc {
			if topo.Node(c.From).Kind != topology.Switch ||
				topo.Node(c.To).Kind != topology.Switch {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a cycle implies a nontrivial SCC and vice versa.
func TestCycleIffSCC(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo := topology.FatTree(4, topology.DefaultLinkParams())
		topo.FailRandomLinks(rng, 0.08)
		tab := routing.NewSPF(topo)
		g := FromAllPairs(topo, tab, nil)
		return g.HasCycle() == (len(g.StronglyConnected()) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFlowKeyDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for s := topology.NodeID(0); s < 50; s++ {
		for d := topology.NodeID(0); d < 50; d++ {
			k := FlowKey(s, d)
			if seen[k] {
				t.Fatalf("FlowKey collision at %d,%d", s, d)
			}
			seen[k] = true
		}
	}
}
