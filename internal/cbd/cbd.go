// Package cbd analyses Cyclic Buffer Dependencies — the *circular wait*
// condition of network deadlock (§2.1). The buffer-dependency graph has one
// vertex per directed switch-to-switch channel (an ingress buffer) and an
// edge from channel u to channel v when some flow path arrives at a switch
// over u and departs over v. A cycle in this graph is a CBD; the Table 1
// sweep uses this analysis to pre-filter deadlock-prone topologies exactly
// as the paper describes (§6.2.3).
package cbd

import (
	"fmt"
	"sort"

	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
)

// Channel is a directed use of a link: traffic flowing From -> To. It names
// one ingress buffer (the buffer on To's side of the link).
type Channel struct {
	From, To topology.NodeID
}

func (c Channel) String() string { return fmt.Sprintf("%d->%d", c.From, c.To) }

// Graph is a buffer-dependency graph.
type Graph struct {
	topo  *topology.Topology
	verts map[Channel]int
	names []Channel
	succ  [][]int
	edges map[[2]int]bool
}

// NewGraph returns an empty dependency graph over t.
func NewGraph(t *topology.Topology) *Graph {
	return &Graph{
		topo:  t,
		verts: make(map[Channel]int),
		edges: make(map[[2]int]bool),
	}
}

func (g *Graph) vertex(c Channel) int {
	if v, ok := g.verts[c]; ok {
		return v
	}
	v := len(g.names)
	g.verts[c] = v
	g.names = append(g.names, c)
	g.succ = append(g.succ, nil)
	return v
}

// addEdge records the dependency u -> v once.
func (g *Graph) addEdge(u, v int) {
	k := [2]int{u, v}
	if g.edges[k] {
		return
	}
	g.edges[k] = true
	g.succ[u] = append(g.succ[u], v)
}

// switchOnly reports whether both endpoints of c are switches. Host-attached
// channels cannot participate in a cycle (hosts sink or source traffic), so
// the dependency graph only tracks switch-to-switch buffers.
func (g *Graph) switchOnly(c Channel) bool {
	return g.topo.Node(c.From).Kind == topology.Switch &&
		g.topo.Node(c.To).Kind == topology.Switch
}

// AddPath records the buffer dependencies induced by one forwarding path.
func (g *Graph) AddPath(path []routing.Hop) {
	var prev = -1
	for i := 0; i < len(path); i++ {
		h := path[i]
		var to topology.NodeID
		if i+1 < len(path) {
			to = path[i+1].Node
		} else {
			to = h.Link.Other(h.Node)
		}
		c := Channel{From: h.Node, To: to}
		if !g.switchOnly(c) {
			prev = -1
			continue
		}
		v := g.vertex(c)
		if prev >= 0 {
			g.addEdge(prev, v)
		}
		prev = v
	}
}

// NumChannels reports the number of switch-to-switch channels seen so far.
func (g *Graph) NumChannels() int { return len(g.names) }

// HasCycle reports whether the dependency graph contains a cycle, i.e.
// whether the recorded paths can form a CBD.
func (g *Graph) HasCycle() bool { return len(g.FindCycle()) > 0 }

// FindCycle returns the channels of one dependency cycle, or nil when the
// graph is acyclic. The cycle is returned in traversal order.
func (g *Graph) FindCycle() []Channel {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(g.names))
	parent := make([]int, len(g.names))
	for i := range parent {
		parent[i] = -1
	}
	var cycleFrom, cycleTo = -1, -1
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = grey
		for _, v := range g.succ[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case grey:
				cycleFrom, cycleTo = u, v
				return true
			}
		}
		color[u] = black
		return false
	}
	for u := range g.names {
		if color[u] == white && dfs(u) {
			break
		}
	}
	if cycleFrom < 0 {
		return nil
	}
	// Walk parents from cycleFrom back to cycleTo.
	var rev []Channel
	for u := cycleFrom; ; u = parent[u] {
		rev = append(rev, g.names[u])
		if u == cycleTo {
			break
		}
	}
	out := make([]Channel, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// StronglyConnected returns the nontrivial strongly connected components of
// the dependency graph (size >= 2, or a single vertex with a self-loop),
// each sorted for determinism. Every CBD lies inside one of these.
func (g *Graph) StronglyConnected() [][]Channel {
	n := len(g.names)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var next int
	var comps [][]Channel

	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.succ[v] {
			if index[w] < 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			keep := len(comp) >= 2
			if !keep && len(comp) == 1 {
				keep = g.edges[[2]int{comp[0], comp[0]}]
			}
			if keep {
				chans := make([]Channel, len(comp))
				for i, u := range comp {
					chans[i] = g.names[u]
				}
				sort.Slice(chans, func(i, j int) bool {
					if chans[i].From != chans[j].From {
						return chans[i].From < chans[j].From
					}
					return chans[i].To < chans[j].To
				})
				comps = append(comps, chans)
			}
		}
	}
	for v := 0; v < n; v++ {
		if index[v] < 0 {
			strongconnect(v)
		}
	}
	return comps
}

// FromAllPairs builds the dependency graph induced by routing every
// inter-rack host pair of t under tab (the union over the workload's
// possible flows). Pairs whose destination is unreachable are skipped.
// rackOf groups hosts; pass nil to consider all ordered host pairs.
func FromAllPairs(t *topology.Topology, tab *routing.Table, rackOf func(topology.NodeID) int) *Graph {
	g := NewGraph(t)
	hosts := t.Hosts()
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			if rackOf != nil && rackOf(src) == rackOf(dst) {
				continue
			}
			path, err := tab.Path(src, dst, FlowKey(src, dst))
			if err != nil {
				continue
			}
			g.AddPath(path)
		}
	}
	return g
}

// FlowKey derives the deterministic ECMP key used for the (src, dst) pair
// throughout the sweeps, so the static analysis and the simulator route
// flows identically.
func FlowKey(src, dst topology.NodeID) uint64 {
	return uint64(src)<<32 | uint64(uint32(dst))
}
