module github.com/gfcsim/gfc

go 1.22
